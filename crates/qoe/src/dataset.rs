//! The session dataset and its figure-oriented selectors.
//!
//! §5: "We have data of 4615 sessions in total: 1796 RTMP and 1586 HLS
//! sessions without a bandwidth limit and 18-91 sessions for each specific
//! bandwidth limit." A [`SessionDataset`] wraps such a collection and
//! exposes the exact groupings the figures use.

use pscp_client::{SessionOutcome, ViewerDevice};
use pscp_service::select::Protocol;
use pscp_stats::BoxplotSummary;

/// A collection of completed sessions.
#[derive(Debug, Default)]
pub struct SessionDataset {
    /// All outcomes.
    pub sessions: Vec<SessionOutcome>,
}

impl SessionDataset {
    /// Wraps outcomes into a dataset.
    pub fn new(sessions: Vec<SessionOutcome>) -> Self {
        SessionDataset { sessions }
    }

    /// Appends more sessions (e.g. another sweep point).
    pub fn extend(&mut self, more: Vec<SessionOutcome>) {
        self.sessions.extend(more);
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions using `protocol`.
    pub fn by_protocol(&self, protocol: Protocol) -> Vec<&SessionOutcome> {
        self.sessions.iter().filter(|s| s.protocol == protocol).collect()
    }

    /// Unlimited-bandwidth sessions using `protocol`.
    pub fn unlimited(&self, protocol: Protocol) -> Vec<&SessionOutcome> {
        self.sessions
            .iter()
            .filter(|s| s.protocol == protocol && s.bandwidth_limit_bps.is_none())
            .collect()
    }

    /// Sessions at a specific bandwidth limit (Mbps), any protocol.
    pub fn at_limit(&self, mbps: f64) -> Vec<&SessionOutcome> {
        self.sessions
            .iter()
            .filter(|s| {
                s.bandwidth_limit_bps.map(|b| (b / 1e6 - mbps).abs() < 1e-6).unwrap_or(false)
            })
            .collect()
    }

    /// Sessions on a given device.
    pub fn by_device(&self, device: ViewerDevice) -> Vec<&SessionOutcome> {
        self.sessions.iter().filter(|s| s.device == device).collect()
    }

    /// Stall ratios of a session group.
    pub fn stall_ratios(group: &[&SessionOutcome]) -> Vec<f64> {
        group.iter().map(|s| s.stall_ratio()).collect()
    }

    /// Join times (seconds) of a group; sessions that never joined count as
    /// the full watch duration, matching the paper's 60 s − (play+stall)
    /// formula which yields 60 s when nothing played.
    pub fn join_times_s(group: &[&SessionOutcome]) -> Vec<f64> {
        group.iter().map(|s| s.join_time_s().unwrap_or(s.player.session_s)).collect()
    }

    /// Reported playback latencies of a group (RTMP only — HLS sessions
    /// return nothing, as in the app's playbackMeta).
    pub fn playback_latencies_s(group: &[&SessionOutcome]) -> Vec<f64> {
        group.iter().filter_map(|s| s.meta.playback_latency_s).collect()
    }

    /// Stall-event counts of a group.
    pub fn stall_counts(group: &[&SessionOutcome]) -> Vec<f64> {
        group.iter().map(|s| s.meta.n_stalls as f64).collect()
    }

    /// Rendered frame rates of a group.
    pub fn fps(group: &[&SessionOutcome]) -> Vec<f64> {
        group.iter().map(|s| s.rendered_fps).collect()
    }

    /// Boxplot summary of a metric over the sessions at each bandwidth
    /// limit in `limits_mbps` (the Fig 3b/4 sweep shape).
    pub fn boxplots_by_limit<F>(
        &self,
        limits_mbps: &[f64],
        metric: F,
    ) -> Vec<(f64, Option<BoxplotSummary>)>
    where
        F: Fn(&[&SessionOutcome]) -> Vec<f64>,
    {
        limits_mbps
            .iter()
            .map(|&l| {
                let group = if l >= 100.0 {
                    self.sessions.iter().filter(|s| s.bandwidth_limit_bps.is_none()).collect()
                } else {
                    self.at_limit(l)
                };
                let values = metric(&group);
                (l, BoxplotSummary::of(&values).ok())
            })
            .collect()
    }

    /// Distinct serving endpoints seen, per protocol — the §5 "87 Amazon
    /// servers vs 2 HLS addresses" observation.
    pub fn distinct_servers(&self, protocol: Protocol) -> std::collections::HashSet<String> {
        self.sessions.iter().filter(|s| s.protocol == protocol).map(|s| s.server.clone()).collect()
    }

    /// Mean viewers at join per protocol, the basis of the paper's ~100
    /// viewer HLS threshold estimate.
    pub fn mean_viewers_at_join(&self, protocol: Protocol) -> Option<f64> {
        let group = self.by_protocol(protocol);
        if group.is_empty() {
            return None;
        }
        Some(group.iter().map(|s| s.viewers_at_join as f64).sum::<f64>() / group.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::player::PlayerLog;
    use pscp_client::session::PlaybackMetaReport;
    use pscp_media::capture::Capture;
    use pscp_workload::broadcast::BroadcastId;

    fn outcome(
        protocol: Protocol,
        limit: Option<f64>,
        device: ViewerDevice,
        join: Option<f64>,
        stall_s: f64,
    ) -> SessionOutcome {
        use pscp_client::player::Stall;
        use pscp_simnet::{SimDuration, SimTime};
        let stalls = if stall_s > 0.0 {
            vec![Stall {
                start: SimTime::from_secs(10),
                duration: SimDuration::from_secs_f64(stall_s),
            }]
        } else {
            Vec::new()
        };
        SessionOutcome {
            broadcast_id: BroadcastId(1),
            protocol,
            device,
            bandwidth_limit_bps: limit.map(|m| m * 1e6),
            player: PlayerLog {
                join_time: join.map(SimDuration::from_secs_f64),
                stalls,
                played_s: 50.0,
                latency_samples: vec![2.0],
                session_s: 60.0,
            },
            capture: Capture::new(),
            meta: PlaybackMetaReport {
                n_stalls: u32::from(stall_s > 0.0),
                avg_stall_time_s: (stall_s > 0.0).then_some(stall_s),
                playback_latency_s: (protocol == Protocol::Rtmp).then_some(2.0),
            },
            viewers_at_join: if protocol == Protocol::Hls { 500 } else { 10 },
            rendered_fps: 28.0,
            server: match protocol {
                Protocol::Rtmp => "vidman-eu-central-1-01.periscope.tv".to_string(),
                Protocol::Hls => "fastly-eu.periscope.tv".to_string(),
                Protocol::Srt => "srt-vidman-eu-central-1-01.periscope.tv".to_string(),
            },
        }
    }

    fn dataset() -> SessionDataset {
        SessionDataset::new(vec![
            outcome(Protocol::Rtmp, None, ViewerDevice::GalaxyS4, Some(1.0), 0.0),
            outcome(Protocol::Rtmp, None, ViewerDevice::GalaxyS3, Some(2.0), 4.0),
            outcome(Protocol::Rtmp, Some(2.0), ViewerDevice::GalaxyS4, Some(5.0), 10.0),
            outcome(Protocol::Hls, None, ViewerDevice::GalaxyS4, Some(7.0), 0.0),
            outcome(Protocol::Rtmp, Some(0.5), ViewerDevice::GalaxyS3, None, 0.0),
        ])
    }

    #[test]
    fn selectors() {
        let d = dataset();
        assert_eq!(d.len(), 5);
        assert_eq!(d.by_protocol(Protocol::Rtmp).len(), 4);
        assert_eq!(d.unlimited(Protocol::Rtmp).len(), 2);
        assert_eq!(d.at_limit(2.0).len(), 1);
        assert_eq!(d.by_device(ViewerDevice::GalaxyS3).len(), 2);
    }

    #[test]
    fn join_times_fall_back_to_session_length() {
        let d = dataset();
        let joins = SessionDataset::join_times_s(&d.at_limit(0.5));
        assert_eq!(joins, vec![60.0]);
    }

    #[test]
    fn playback_latency_rtmp_only() {
        let d = dataset();
        let hls = SessionDataset::playback_latencies_s(&d.by_protocol(Protocol::Hls));
        assert!(hls.is_empty());
        let rtmp = SessionDataset::playback_latencies_s(&d.by_protocol(Protocol::Rtmp));
        assert_eq!(rtmp.len(), 4);
    }

    #[test]
    fn boxplots_by_limit_includes_unlimited_as_100() {
        let d = dataset();
        let plots = d.boxplots_by_limit(&[0.5, 2.0, 100.0], SessionDataset::stall_ratios);
        assert_eq!(plots.len(), 3);
        assert!(plots[2].1.is_some()); // unlimited bucket non-empty
    }

    #[test]
    fn distinct_servers_and_viewer_means() {
        let d = dataset();
        assert_eq!(d.distinct_servers(Protocol::Rtmp).len(), 1);
        let hls_mean = d.mean_viewers_at_join(Protocol::Hls).unwrap();
        let rtmp_mean = d.mean_viewers_at_join(Protocol::Rtmp).unwrap();
        assert!(hls_mean > 100.0 && rtmp_mean < 100.0);
    }

    #[test]
    fn stall_ratio_vector() {
        let d = dataset();
        let ratios = SessionDataset::stall_ratios(&d.unlimited(Protocol::Rtmp));
        assert_eq!(ratios.len(), 2);
        assert!(ratios.contains(&0.0));
        assert!(ratios.iter().any(|&r| r > 0.05));
    }
}
