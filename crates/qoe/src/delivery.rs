//! Delivery latency from captures — the §5.1 NTP-timestamp method.
//!
//! "the timestamps enable calculating the delivery latency by subtracting
//! the NTP timestamp value from the time of receiving the packet containing
//! it, also for the HLS sessions for which the playback metadata does not
//! include it."

use pscp_client::SessionOutcome;
use pscp_media::analysis::{analyze_hls_flow, analyze_rtmp_flow, StreamReport};
use pscp_media::capture::{Flow, FlowKind};
use pscp_service::select::Protocol;

/// RTMP downstream handshake size (S0 + S1 + S2) that precedes chunk data.
const RTMP_HANDSHAKE_DOWN: usize = 1 + 2 * 1536;

/// Strips the RTMP handshake bytes from the front of a flow, the way the
/// paper's wireshark workflow starts dissecting after the handshake.
pub fn strip_rtmp_handshake(flow: &Flow) -> Flow {
    let mut out = Flow::new(flow.kind, flow.server.clone());
    out.reserve(flow.byte_count().saturating_sub(RTMP_HANDSHAKE_DOWN), flow.packet_count());
    let mut skipped = 0usize;
    for p in flow.packets() {
        if skipped >= RTMP_HANDSHAKE_DOWN {
            out.record(p.at, p.wall_ts, p.payload);
        } else if skipped + p.payload.len() > RTMP_HANDSHAKE_DOWN {
            let cut = RTMP_HANDSHAKE_DOWN - skipped;
            out.record(p.at, p.wall_ts, &p.payload[cut..]);
            skipped = RTMP_HANDSHAKE_DOWN;
        } else {
            skipped += p.payload.len();
        }
    }
    out
}

/// Runs the full capture analysis for one session, dispatching on protocol.
pub fn analyze_session(outcome: &SessionOutcome) -> Option<StreamReport> {
    match outcome.protocol {
        Protocol::Rtmp => {
            let flow = outcome.capture.flow_of_kind(FlowKind::Rtmp)?;
            analyze_rtmp_flow(&strip_rtmp_handshake(flow)).ok()
        }
        Protocol::Hls => {
            let flow = outcome.capture.flow_of_kind(FlowKind::HlsHttp)?;
            analyze_hls_flow(flow).ok()
        }
        // SRT captures are datagram payloads, not a TCP byte stream; the
        // flow dissectors here don't apply. Delivery latency for SRT comes
        // from the player's capture→render samples instead.
        Protocol::Srt => None,
    }
}

/// Mean delivery latency of one session from its capture, seconds.
pub fn delivery_latency_s(outcome: &SessionOutcome) -> Option<f64> {
    analyze_session(outcome)?.mean_delivery_latency_s()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::session::SessionConfig;
    use pscp_client::{hls_session, rtmp_session};
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::{GeoPoint, RngFactory, SimDuration, SimTime};
    use pscp_workload::broadcast::{Broadcast, BroadcastId, DeviceProfile};

    fn broadcast(viewers: f64) -> Broadcast {
        Broadcast {
            id: BroadcastId(9),
            location: GeoPoint::new(51.51, -0.13),
            city: "London",
            start: SimTime::from_secs(50),
            duration: SimDuration::from_secs(2000),
            content: ContentClass::Outdoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: viewers,
            replay_available: false,
            private: false,
            location_public: true,
            viewer_seed: 9,
            target_bitrate_bps: 300_000.0,
        }
    }

    #[test]
    fn rtmp_delivery_sub_second() {
        let out = rtmp_session::run(
            &broadcast(10.0),
            SimTime::from_secs(300),
            &SessionConfig::default(),
            &RngFactory::new(100),
        );
        let lat = delivery_latency_s(&out).expect("latency recovered");
        assert!(lat < 1.0, "lat={lat}");
    }

    #[test]
    fn hls_delivery_seconds() {
        let out = hls_session::run(
            &broadcast(500.0),
            SimTime::from_secs(300),
            &SessionConfig::default(),
            &RngFactory::new(101),
        );
        let lat = delivery_latency_s(&out).expect("latency recovered");
        assert!(lat > 3.0, "lat={lat}");
    }

    #[test]
    fn strip_preserves_total_minus_handshake() {
        let out = rtmp_session::run(
            &broadcast(10.0),
            SimTime::from_secs(300),
            &SessionConfig::default(),
            &RngFactory::new(102),
        );
        let flow = out.capture.flow_of_kind(FlowKind::Rtmp).unwrap();
        let stripped = strip_rtmp_handshake(flow);
        assert_eq!(stripped.byte_count(), flow.byte_count() - RTMP_HANDSHAKE_DOWN);
    }

    #[test]
    fn analyze_session_reports_video_quality() {
        let out = rtmp_session::run(
            &broadcast(10.0),
            SimTime::from_secs(300),
            &SessionConfig::default(),
            &RngFactory::new(103),
        );
        let report = analyze_session(&out).unwrap();
        assert_eq!(report.width, 320);
        assert!(report.n_frames > 500);
    }
}
