//! CSV export of datasets for external plotting tools.
//!
//! The figures render as text tables in-repo; anyone wanting the paper's
//! actual plot styles (ggplot boxplots, CDF curves) can export the
//! underlying per-session and per-broadcast rows and feed them to R or
//! matplotlib. Plain CSV, RFC 4180 quoting.

use crate::dataset::SessionDataset;
use pscp_client::SessionOutcome;

/// Escapes one CSV field per RFC 4180.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders a CSV from a header and row iterator.
fn csv<I: IntoIterator<Item = Vec<String>>>(header: &[&str], rows: I) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| field(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Per-session CSV: one row per viewing session with every scalar metric
/// the figures use.
pub fn sessions_csv(dataset: &SessionDataset) -> String {
    let header = [
        "broadcast_id",
        "protocol",
        "device",
        "bandwidth_limit_mbps",
        "join_time_s",
        "n_stalls",
        "stall_ratio",
        "avg_stall_s",
        "playback_latency_s",
        "viewers_at_join",
        "rendered_fps",
        "server",
    ];
    let rows = dataset.sessions.iter().map(session_row);
    csv(&header, rows)
}

fn session_row(s: &SessionOutcome) -> Vec<String> {
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
    vec![
        s.broadcast_id.as_string(),
        s.protocol.name().to_string(),
        s.device.name().to_string(),
        s.bandwidth_limit_bps.map(|b| format!("{}", b / 1e6)).unwrap_or_default(),
        opt(s.join_time_s()),
        s.meta.n_stalls.to_string(),
        format!("{:.4}", s.stall_ratio()),
        opt(s.meta.avg_stall_time_s),
        opt(s.meta.playback_latency_s),
        s.viewers_at_join.to_string(),
        format!("{:.2}", s.rendered_fps),
        s.server.clone(),
    ]
}

/// Per-broadcast CSV from crawler observations (the Fig 2 raw data).
pub fn observations_csv<'a, I>(observations: I) -> String
where
    I: IntoIterator<Item = &'a pscp_crawler::BroadcastObservation>,
{
    let header = [
        "broadcast_id",
        "duration_min",
        "avg_viewers",
        "viewer_samples",
        "replay_available",
        "lat",
        "lng",
        "title",
    ];
    let rows = observations.into_iter().map(|o| {
        let (_, title) = pscp_workload::titles::title_for(o.id.0);
        vec![
            o.id.as_string(),
            format!("{:.3}", o.duration_estimate_s() / 60.0),
            format!("{:.2}", o.avg_viewers()),
            o.viewer_samples.to_string(),
            o.replay_available.to_string(),
            format!("{:.3}", o.lat),
            format!("{:.3}", o.lng),
            title,
        ]
    });
    csv(&header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::player::PlayerLog;
    use pscp_client::session::PlaybackMetaReport;
    use pscp_client::ViewerDevice;
    use pscp_media::capture::Capture;
    use pscp_service::select::Protocol;
    use pscp_simnet::SimDuration;
    use pscp_workload::broadcast::BroadcastId;

    fn outcome() -> SessionOutcome {
        SessionOutcome {
            broadcast_id: BroadcastId(1),
            protocol: Protocol::Rtmp,
            device: ViewerDevice::GalaxyS4,
            bandwidth_limit_bps: Some(2e6),
            player: PlayerLog {
                join_time: Some(SimDuration::from_secs(2)),
                stalls: Vec::new(),
                played_s: 58.0,
                latency_samples: vec![2.0],
                session_s: 60.0,
            },
            capture: Capture::new(),
            meta: PlaybackMetaReport {
                n_stalls: 0,
                avg_stall_time_s: None,
                playback_latency_s: Some(2.5),
            },
            viewers_at_join: 12,
            rendered_fps: 29.5,
            server: "vidman-eu-central-1-01.periscope.tv".to_string(),
        }
    }

    #[test]
    fn sessions_csv_shape() {
        let d = SessionDataset::new(vec![outcome(), outcome()]);
        let out = sessions_csv(&d);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("broadcast_id,protocol"));
        assert!(lines[1].contains("RTMP"));
        assert!(lines[1].contains(",2,")); // limit mbps
        assert_eq!(lines[1].split(',').count(), 12);
    }

    #[test]
    fn empty_optionals_are_empty_fields() {
        let d = SessionDataset::new(vec![outcome()]);
        let out = sessions_csv(&d);
        // avg_stall_s empty between stall_ratio and playback latency.
        assert!(out.lines().nth(1).unwrap().contains(",,"));
    }

    #[test]
    fn quoting_rule() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn observations_csv_includes_titles() {
        use pscp_crawler::records::ObservationStore;
        use pscp_service::api::BroadcastDescription;
        use pscp_simnet::SimTime;
        let mut store = ObservationStore::new();
        for i in 0..50 {
            store.ingest(
                &BroadcastDescription {
                    id: BroadcastId(i),
                    start_s: 0.0,
                    n_viewers: 3,
                    available_for_replay: false,
                    live: true,
                    lat: 41.0,
                    lng: 29.0,
                },
                SimTime::from_secs(100),
            );
        }
        let out = observations_csv(store.all());
        assert_eq!(out.lines().count(), 51);
        assert!(out.lines().next().unwrap().ends_with("title"));
    }
}
