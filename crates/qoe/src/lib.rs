#![warn(missing_docs)]

//! QoE analysis over session datasets (§5.1 of the paper).
//!
//! [`dataset`] wraps a collection of simulated viewing sessions with the
//! selectors and aggregations the figures need; [`delivery`] recovers
//! delivery latency from the raw captures via the NTP-timestamp method
//! (§5.1), including the handshake stripping a human would do in wireshark;
//! [`compare`] runs the paper's device-comparison Welch t-tests;
//! [`export`] dumps per-session/per-broadcast CSVs for external plotting;
//! [`slo`] folds causal span trees into per-session phase breakdowns,
//! evaluates declarative SLOs against the paper's headline numbers, and
//! flags MAD-outlier sessions with their dominant phase; [`telemetry`]
//! is the constant-memory streaming counterpart — mergeable sketches
//! that the large-scale and live-monitoring paths fold incrementally
//! (DESIGN.md §11).

pub mod compare;
pub mod dataset;
pub mod delivery;
pub mod export;
pub mod slo;
pub mod telemetry;

pub use dataset::SessionDataset;
pub use slo::{alert_rules, cell_rules, EvalMode, SloReport, SloSpec, SKETCH_SESSION_THRESHOLD};
pub use telemetry::QoeTelemetry;
