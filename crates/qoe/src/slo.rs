//! QoE attribution and SLO evaluation over causal span trees.
//!
//! The paper's central move is *explaining* QoE, not just measuring it:
//! decomposing join time into its phases and attributing multi-second
//! latencies to protocol choice. This module folds the deterministic span
//! trees recorded by `pscp-obs` into per-session [`PhaseBreakdown`]s,
//! evaluates a declarative [`SloSpec`] whose thresholds encode the
//! paper's headline numbers, and flags MAD-outlier sessions together with
//! the phase that dominated their join. Everything is a pure function of
//! the spans and the dataset, with fixed float formatting — the rendered
//! `SLO_report.json` is byte-identical at any thread count.

use std::collections::BTreeMap;

use pscp_obs::Span;
use pscp_service::select::Protocol;
use pscp_stats::quantile::{median, quantile};

use crate::dataset::SessionDataset;
use crate::telemetry::QoeTelemetry;

/// One session's join time decomposed into its causal phases.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Work-unit label (e.g. `"session/17"`, `"limit-2/session/3"`).
    pub unit: String,
    /// Protocol inferred from the child phases.
    pub protocol: Protocol,
    /// Root span duration — the session's join time, seconds.
    pub join_s: f64,
    /// `(phase name, seconds)` for each child of the root, in span order.
    /// The children tile the root, so these sum to `join_s` exactly.
    pub phases: Vec<(String, f64)>,
}

impl PhaseBreakdown {
    /// The longest phase, if any.
    pub fn dominant_phase(&self) -> Option<(&str, f64)> {
        self.phases
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("phase durations are finite"))
            .map(|(n, s)| (n.as_str(), *s))
    }

    /// Sum of the child phases, seconds (equals `join_s` by construction).
    pub fn phases_sum_s(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }
}

/// Folds a merged `(unit, span)` log into per-session breakdowns: one per
/// unit that contains a closed `session.join` root, with the root's
/// children as phases. Units appear in log (= plan) order.
pub fn fold_breakdowns(spans: &[(String, Span)]) -> Vec<PhaseBreakdown> {
    let mut order: Vec<&str> = Vec::new();
    let mut by_unit: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
    for (unit, span) in spans {
        let entry = by_unit.entry(unit.as_str()).or_default();
        if entry.is_empty() {
            order.push(unit.as_str());
        }
        entry.push(span);
    }
    let mut out = Vec::new();
    for unit in order {
        let unit_spans = &by_unit[unit];
        let Some(root) = unit_spans.iter().find(|s| s.name == "session.join") else {
            continue;
        };
        let mut phases = Vec::new();
        let mut protocol = None;
        for s in unit_spans.iter().filter(|s| s.parent == Some(root.id)) {
            phases.push((s.name.to_string(), s.duration_s()));
            protocol = protocol.or(match s.subsystem {
                "rtmp" => Some(Protocol::Rtmp),
                "hls" | "tcp" => Some(Protocol::Hls),
                "srt" => Some(Protocol::Srt),
                _ => None,
            });
        }
        out.push(PhaseBreakdown {
            unit: unit.to_string(),
            protocol: protocol.unwrap_or(Protocol::Rtmp),
            join_s: root.duration_s(),
            phases,
        });
    }
    out
}

/// A declarative set of QoE objectives, thresholds taken from the paper's
/// headline numbers.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// p90 join time over unlimited sessions must stay below this.
    pub join_p90_max_s: f64,
    /// p90 stall ratio over unlimited sessions must stay below this.
    pub stall_ratio_p90_max: f64,
    /// p75 of RTMP playbackMeta latency must stay below this (§5.1: RTMP
    /// delivery is sub-second for 75% of sessions; end-to-end playback
    /// latency adds the ~1.6 s client buffer).
    pub rtmp_latency_p75_max_s: f64,
    /// Mean HLS capture→render latency must *exceed* this (§5.1/Fig 5:
    /// "more than 5 seconds on average" — a model-consistency floor).
    pub hls_latency_mean_min_s: f64,
    /// MAD multiplier above which a session's join time is an outlier.
    pub mad_k: f64,
}

impl SloSpec {
    /// Thresholds encoded from the paper (§5.1, Figs 3–5).
    pub fn paper() -> SloSpec {
        SloSpec {
            join_p90_max_s: 12.0,
            stall_ratio_p90_max: 0.10,
            rtmp_latency_p75_max_s: 4.0,
            hls_latency_mean_min_s: 5.0,
            mad_k: 3.5,
        }
    }
}

/// Burn-rate alert rules derived from the spec's objectives plus the
/// fault-symptom Event rules (DESIGN.md §14): a join-time burn and a
/// stall-ratio burn (bad = observation past the p90 threshold, 10% error
/// budget — the budget the p90 objectives imply), one POP-outage Event
/// rule per CDN POP, and the aggregate ingest-outage Event rule. The rule
/// set is a pure function of the spec, so timelines stay comparable
/// across runs.
pub fn alert_rules(spec: &SloSpec) -> Vec<pscp_obs::AlertRule> {
    let mut rules = vec![
        pscp_obs::AlertRule::burn(
            "join_burn",
            "alert",
            "join_time_us",
            (spec.join_p90_max_s * 1e6).round() as u64,
            0.10,
        ),
        pscp_obs::AlertRule::burn(
            "stall_burn",
            "alert",
            "stall_ppm",
            (spec.stall_ratio_p90_max * 1e6).round() as u64,
            0.10,
        ),
    ];
    for pop in pscp_service::cdn::CdnPop::ALL {
        rules.push(pscp_obs::AlertRule::event(
            &format!("pop_outage/{}", pop.hostname()),
            "outage",
            pop.hostname(),
            1,
        ));
    }
    rules.push(pscp_obs::AlertRule::event("ingest_outage", "outage", "ingest", 1));
    rules
}

/// Per-shard-cell join-burn rules at the reference quadtree depth: one
/// rule per depth-2 quadkey, over the teleport driver's `cell/{key}`
/// rings. Used by the incident correlator to scope incidents to shard
/// cells; kept out of [`alert_rules`] so the live watch stays compact.
pub fn cell_rules(spec: &SloSpec) -> Vec<pscp_obs::AlertRule> {
    (0u16..16)
        .map(|key| {
            let quadkey = format!("{}{}", key >> 2, key & 3);
            pscp_obs::AlertRule::burn(
                &format!("join_burn/cell={quadkey}"),
                "cell",
                &quadkey,
                (spec.join_p90_max_s * 1e6).round() as u64,
                0.10,
            )
        })
        .collect()
}

/// One evaluated objective.
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Stable objective name.
    pub name: &'static str,
    /// Measured value (NaN-free: unmeasurable objectives are skipped).
    pub measured: f64,
    /// Threshold from the spec.
    pub threshold: f64,
    /// `"<="` or `">="`.
    pub op: &'static str,
    /// Whether the objective holds.
    pub pass: bool,
}

/// A session flagged as a join-time outlier, with its dominant phase.
#[derive(Debug, Clone)]
pub struct OutlierSession {
    /// Work-unit label.
    pub unit: String,
    /// The outlier join time, seconds.
    pub join_s: f64,
    /// Robust z-score: deviation from the median in MAD units.
    pub mad_score: f64,
    /// Name of the longest phase.
    pub dominant_phase: String,
    /// Duration of that phase, seconds.
    pub dominant_s: f64,
}

/// Mean per-phase decomposition for one protocol.
#[derive(Debug, Clone)]
pub struct ProtocolDecomposition {
    /// Which protocol.
    pub protocol: Protocol,
    /// Sessions with a breakdown.
    pub n: usize,
    /// Mean join time over those sessions, seconds.
    pub join_mean_s: f64,
    /// `(phase name, mean seconds)` sorted by name.
    pub phase_means: Vec<(String, f64)>,
}

/// The full SLO/attribution report.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Free-form label (scale/seed) stamped by the caller.
    pub label: String,
    /// Sessions in the dataset.
    pub n_sessions: usize,
    /// Sessions with a span breakdown.
    pub n_breakdowns: usize,
    /// Evaluated objectives, in fixed order.
    pub objectives: Vec<SloObjective>,
    /// Mean join decomposition per protocol (RTMP then HLS).
    pub decomposition: Vec<ProtocolDecomposition>,
    /// MAD outliers, most extreme first.
    pub outliers: Vec<OutlierSession>,
}

impl SloReport {
    /// Whether every objective holds.
    pub fn pass(&self) -> bool {
        self.objectives.iter().all(|o| o.pass)
    }

    /// Renders the report as one stable JSON document (trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(2048);
        let _ = write!(
            s,
            "{{\"label\":\"{}\",\"pass\":{},\"n_sessions\":{},\"n_breakdowns\":{}",
            escape(&self.label),
            self.pass(),
            self.n_sessions,
            self.n_breakdowns
        );
        s.push_str(",\"objectives\":[");
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"measured\":{:.6},\"op\":\"{}\",\"threshold\":{:.6},\
                 \"pass\":{}}}",
                o.name, o.measured, o.op, o.threshold, o.pass
            );
        }
        s.push_str("],\"decomposition\":[");
        for (i, d) in self.decomposition.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"protocol\":\"{}\",\"n\":{},\"join_mean_s\":{:.6},\"phase_means_s\":{{",
                protocol_name(d.protocol),
                d.n,
                d.join_mean_s
            );
            for (j, (name, mean)) in d.phase_means.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{:.6}", escape(name), mean);
            }
            s.push_str("}}");
        }
        s.push_str("],\"outliers\":[");
        for (i, o) in self.outliers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"unit\":\"{}\",\"join_s\":{:.6},\"mad_score\":{:.6},\
                 \"dominant_phase\":\"{}\",\"dominant_s\":{:.6}}}",
                escape(&o.unit),
                o.join_s,
                o.mad_score,
                escape(&o.dominant_phase),
                o.dominant_s
            );
        }
        s.push_str("]}\n");
        s
    }

    /// Renders a human-oriented summary table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "SLO report [{}] — {} sessions, {} with span trees — {}",
            self.label,
            self.n_sessions,
            self.n_breakdowns,
            if self.pass() { "PASS" } else { "FAIL" }
        );
        for o in &self.objectives {
            let _ = writeln!(
                s,
                "  [{}] {:<24} {:>10.3} {} {:.3}",
                if o.pass { "ok" } else { "VIOLATED" },
                o.name,
                o.measured,
                o.op,
                o.threshold
            );
        }
        for d in &self.decomposition {
            let _ = writeln!(
                s,
                "  {} join decomposition (n={}, mean {:.3}s):",
                protocol_name(d.protocol),
                d.n,
                d.join_mean_s
            );
            for (name, mean) in &d.phase_means {
                let _ = writeln!(s, "    {:<18} {:>8.3}s", name, mean);
            }
        }
        let _ = writeln!(s, "  outliers: {}", self.outliers.len());
        for o in self.outliers.iter().take(10) {
            let _ = writeln!(
                s,
                "    {:<24} join={:>8.3}s mad={:>6.1} dominated by {} ({:.3}s)",
                o.unit, o.join_s, o.mad_score, o.dominant_phase, o.dominant_s
            );
        }
        s
    }
}

fn protocol_name(p: Protocol) -> &'static str {
    match p {
        Protocol::Rtmp => "rtmp",
        Protocol::Hls => "hls",
        Protocol::Srt => "srt",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Fewest samples a per-protocol latency quantile objective needs before
/// it is reported at all. Forcing a transport arm (the chaos sweep's
/// three-way study) can leave another protocol with one or two stray
/// sessions — e.g. SRT→RTMP handshake fallbacks — and a "p75" over such a
/// sliver is noise, not an objective. The paper-scale workloads are far
/// above this floor, so the golden `SLO_report.json` is unaffected.
pub const MIN_QUANTILE_SAMPLES: usize = 4;

/// Session count at which [`evaluate`] switches from exact full-sample
/// quantiles to constant-memory streaming sketches (DESIGN.md §11).
/// Paper scale (~4k sessions) stays below it, so the golden
/// `SLO_report.json` and figures are computed on the exact path,
/// byte-for-byte as before.
pub const SKETCH_SESSION_THRESHOLD: usize = 10_000;

/// Which evaluation path [`evaluate_with_mode`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Exact below [`SKETCH_SESSION_THRESHOLD`] sessions, sketched at or
    /// above it.
    Auto,
    /// Always the exact full-sample path.
    Exact,
    /// Always the streaming-sketch path (tests and the live monitor).
    Sketched,
}

/// Evaluates `spec` over the dataset's scalar QoE metrics and the span
/// trees' phase breakdowns, picking the exact or sketched path by
/// dataset size (see [`SKETCH_SESSION_THRESHOLD`]).
pub fn evaluate(
    spec: &SloSpec,
    dataset: &SessionDataset,
    spans: &[(String, Span)],
    label: &str,
) -> SloReport {
    evaluate_with_mode(spec, dataset, spans, label, EvalMode::Auto)
}

/// [`evaluate`] with an explicit path choice.
pub fn evaluate_with_mode(
    spec: &SloSpec,
    dataset: &SessionDataset,
    spans: &[(String, Span)],
    label: &str,
    mode: EvalMode,
) -> SloReport {
    let sketched = match mode {
        EvalMode::Auto => dataset.len() >= SKETCH_SESSION_THRESHOLD,
        EvalMode::Exact => false,
        EvalMode::Sketched => true,
    };
    if sketched {
        evaluate_sketched(spec, dataset, spans, label)
    } else {
        evaluate_exact(spec, dataset, spans, label)
    }
}

/// The exact full-sample evaluation: materialises metric vectors and
/// sorts for quantiles. Source of truth for golden artifacts.
fn evaluate_exact(
    spec: &SloSpec,
    dataset: &SessionDataset,
    spans: &[(String, Span)],
    label: &str,
) -> SloReport {
    let breakdowns = fold_breakdowns(spans);
    let mut objectives = Vec::new();

    let mut unlimited: Vec<&pscp_client::SessionOutcome> = dataset.unlimited(Protocol::Rtmp);
    unlimited.extend(dataset.unlimited(Protocol::Hls));
    unlimited.extend(dataset.unlimited(Protocol::Srt));
    let joins = SessionDataset::join_times_s(&unlimited);
    if let Ok(p90) = quantile(&joins, 0.90) {
        objectives.push(SloObjective {
            name: "join_time_p90_s",
            measured: p90,
            threshold: spec.join_p90_max_s,
            op: "<=",
            pass: p90 <= spec.join_p90_max_s,
        });
    }
    let ratios = SessionDataset::stall_ratios(&unlimited);
    if let Ok(p90) = quantile(&ratios, 0.90) {
        objectives.push(SloObjective {
            name: "stall_ratio_p90",
            measured: p90,
            threshold: spec.stall_ratio_p90_max,
            op: "<=",
            pass: p90 <= spec.stall_ratio_p90_max,
        });
    }
    let rtmp_lat = SessionDataset::playback_latencies_s(&dataset.unlimited(Protocol::Rtmp));
    if rtmp_lat.len() >= MIN_QUANTILE_SAMPLES {
        if let Ok(p75) = quantile(&rtmp_lat, 0.75) {
            objectives.push(SloObjective {
                name: "rtmp_latency_p75_s",
                measured: p75,
                threshold: spec.rtmp_latency_p75_max_s,
                op: "<=",
                pass: p75 <= spec.rtmp_latency_p75_max_s,
            });
        }
    }
    let hls_lat: Vec<f64> =
        dataset.unlimited(Protocol::Hls).iter().filter_map(|s| s.player.mean_latency_s()).collect();
    if !hls_lat.is_empty() {
        let mean = hls_lat.iter().sum::<f64>() / hls_lat.len() as f64;
        objectives.push(SloObjective {
            name: "hls_latency_mean_s",
            measured: mean,
            threshold: spec.hls_latency_mean_min_s,
            op: ">=",
            pass: mean >= spec.hls_latency_mean_min_s,
        });
    }

    let decomposition = [Protocol::Rtmp, Protocol::Hls, Protocol::Srt]
        .into_iter()
        .filter_map(|proto| {
            let group: Vec<&PhaseBreakdown> =
                breakdowns.iter().filter(|b| b.protocol == proto).collect();
            if group.is_empty() {
                return None;
            }
            let n = group.len();
            let join_mean_s = group.iter().map(|b| b.join_s).sum::<f64>() / n as f64;
            let mut sums: BTreeMap<&str, f64> = BTreeMap::new();
            for b in &group {
                for (name, secs) in &b.phases {
                    *sums.entry(name.as_str()).or_insert(0.0) += secs;
                }
            }
            let phase_means =
                sums.into_iter().map(|(name, sum)| (name.to_string(), sum / n as f64)).collect();
            Some(ProtocolDecomposition { protocol: proto, n, join_mean_s, phase_means })
        })
        .collect();

    // MAD outliers over the breakdown join times: robustly slow sessions,
    // attributed to their dominant phase.
    let mut outliers = Vec::new();
    let join_bd: Vec<f64> = breakdowns.iter().map(|b| b.join_s).collect();
    if let Ok(med) = median(&join_bd) {
        let deviations: Vec<f64> = join_bd.iter().map(|&j| (j - med).abs()).collect();
        if let Ok(mad) = median(&deviations) {
            // 1.4826 rescales MAD to the stdev of a normal distribution.
            let scale = 1.4826 * mad;
            if scale > 1e-9 {
                for b in &breakdowns {
                    let score = (b.join_s - med) / scale;
                    if score > spec.mad_k {
                        let (dominant_phase, dominant_s) = b
                            .dominant_phase()
                            .map(|(n, s)| (n.to_string(), s))
                            .unwrap_or_else(|| ("unknown".to_string(), 0.0));
                        outliers.push(OutlierSession {
                            unit: b.unit.clone(),
                            join_s: b.join_s,
                            mad_score: score,
                            dominant_phase,
                            dominant_s,
                        });
                    }
                }
            }
        }
    }
    outliers.sort_by(|a, b| {
        b.mad_score.partial_cmp(&a.mad_score).expect("finite").then(a.unit.cmp(&b.unit))
    });

    SloReport {
        label: label.to_string(),
        n_sessions: dataset.len(),
        n_breakdowns: breakdowns.len(),
        objectives,
        decomposition,
        outliers,
    }
}

/// The streaming evaluation: folds outcomes and breakdowns into
/// [`QoeTelemetry`] sketches, then reads the objectives off the sketch
/// quantiles. Holds no sample vectors — memory is O(1) in session count
/// (quantiles carry the sketch's ≤ 1/128 relative rank-bucket error).
/// MAD outliers use the sketch median plus one extra streaming pass for
/// the deviation median.
fn evaluate_sketched(
    spec: &SloSpec,
    dataset: &SessionDataset,
    spans: &[(String, Span)],
    label: &str,
) -> SloReport {
    let breakdowns = fold_breakdowns(spans);
    let mut tele = QoeTelemetry::from_dataset(dataset);
    for b in &breakdowns {
        tele.fold_breakdown(b);
    }

    let mut objectives = Vec::new();
    if let Some(p90) = tele.join_us.quantile(0.90) {
        let measured = p90 as f64 / 1e6;
        objectives.push(SloObjective {
            name: "join_time_p90_s",
            measured,
            threshold: spec.join_p90_max_s,
            op: "<=",
            pass: measured <= spec.join_p90_max_s,
        });
    }
    if let Some(p90) = tele.stall_ppm.quantile(0.90) {
        let measured = p90 as f64 / 1e6;
        objectives.push(SloObjective {
            name: "stall_ratio_p90",
            measured,
            threshold: spec.stall_ratio_p90_max,
            op: "<=",
            pass: measured <= spec.stall_ratio_p90_max,
        });
    }
    if tele.rtmp_latency_us.count() >= MIN_QUANTILE_SAMPLES as u64 {
        if let Some(p75) = tele.rtmp_latency_us.quantile(0.75) {
            let measured = p75 as f64 / 1e6;
            objectives.push(SloObjective {
                name: "rtmp_latency_p75_s",
                measured,
                threshold: spec.rtmp_latency_p75_max_s,
                op: "<=",
                pass: measured <= spec.rtmp_latency_p75_max_s,
            });
        }
    }
    if !tele.hls_latency_s.is_empty() {
        let mean = tele.hls_latency_s.mean();
        objectives.push(SloObjective {
            name: "hls_latency_mean_s",
            measured: mean,
            threshold: spec.hls_latency_mean_min_s,
            op: ">=",
            pass: mean >= spec.hls_latency_mean_min_s,
        });
    }

    let decomposition = [Protocol::Rtmp, Protocol::Hls, Protocol::Srt]
        .into_iter()
        .filter_map(|proto| {
            let n = tele.breakdown_count(proto) as usize;
            if n == 0 {
                return None;
            }
            Some(ProtocolDecomposition {
                protocol: proto,
                n,
                join_mean_s: tele.join_mean_s(proto),
                phase_means: tele.phase_means(proto),
            })
        })
        .collect();

    // MAD outliers: median from the breakdown-join sketch, deviation
    // median from one more constant-memory pass, then per-item flagging.
    let mut outliers = Vec::new();
    if let Some(med_us) = tele.join_bd_us.quantile(0.5) {
        let med = med_us as f64 / 1e6;
        let mut deviations = pscp_stats::QuantileSketch::new();
        for b in &breakdowns {
            deviations.observe(((b.join_s - med).abs() * 1e6).round() as u64);
        }
        if let Some(mad_us) = deviations.quantile(0.5) {
            let scale = 1.4826 * (mad_us as f64 / 1e6);
            if scale > 1e-9 {
                for b in &breakdowns {
                    let score = (b.join_s - med) / scale;
                    if score > spec.mad_k {
                        let (dominant_phase, dominant_s) = b
                            .dominant_phase()
                            .map(|(n, s)| (n.to_string(), s))
                            .unwrap_or_else(|| ("unknown".to_string(), 0.0));
                        outliers.push(OutlierSession {
                            unit: b.unit.clone(),
                            join_s: b.join_s,
                            mad_score: score,
                            dominant_phase,
                            dominant_s,
                        });
                    }
                }
            }
        }
    }
    outliers.sort_by(|a, b| {
        b.mad_score.partial_cmp(&a.mad_score).expect("finite").then(a.unit.cmp(&b.unit))
    });

    SloReport {
        label: label.to_string(),
        n_sessions: dataset.len(),
        n_breakdowns: breakdowns.len(),
        objectives,
        decomposition,
        outliers,
    }
}

/// Renders one unit's span tree (root, children, then side spans) for
/// `repro explain`. Returns `None` when the unit has no spans.
pub fn explain_unit(unit: &str, spans: &[(String, Span)]) -> Option<String> {
    use std::fmt::Write as _;
    let unit_spans: Vec<&Span> = spans.iter().filter(|(u, _)| u == unit).map(|(_, s)| s).collect();
    if unit_spans.is_empty() {
        return None;
    }
    let mut s = String::new();
    let _ = writeln!(s, "span tree for {unit}:");
    let mut in_tree: Vec<u32> = Vec::new();
    let render = |s: &mut String, span: &Span, depth: usize| {
        let _ = writeln!(
            s,
            "{}{:<20} {:>10.3}s  [{:.3}s → {:.3}s]",
            "  ".repeat(depth + 1),
            span.name,
            span.duration_s(),
            span.start_us as f64 / 1e6,
            span.end_us as f64 / 1e6,
        );
    };
    for root in unit_spans.iter().filter(|s| s.parent.is_none() && s.name == "session.join") {
        in_tree.push(root.id);
        render(&mut s, root, 0);
        for child in unit_spans.iter().filter(|c| c.parent == Some(root.id)) {
            in_tree.push(child.id);
            render(&mut s, child, 1);
            for grand in unit_spans.iter().filter(|g| g.parent == Some(child.id)) {
                in_tree.push(grand.id);
                render(&mut s, grand, 2);
            }
        }
    }
    let side: Vec<&&Span> = unit_spans.iter().filter(|sp| !in_tree.contains(&sp.id)).collect();
    if !side.is_empty() {
        let _ = writeln!(s, "  side spans:");
        for sp in side {
            render(&mut s, sp, 1);
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u32,
        parent: Option<u32>,
        start_s: f64,
        end_s: f64,
        subsystem: &'static str,
        name: &'static str,
    ) -> Span {
        Span {
            id,
            parent,
            start_us: (start_s * 1e6) as u64,
            end_us: (end_s * 1e6) as u64,
            subsystem,
            name,
        }
    }

    fn sample_spans() -> Vec<(String, Span)> {
        vec![
            ("session/0".into(), span(0, None, 10.0, 13.0, "session", "session.join")),
            ("session/0".into(), span(1, Some(0), 10.0, 10.0, "api", "api.request")),
            ("session/0".into(), span(2, Some(0), 10.0, 10.2, "rtmp", "rtmp.handshake")),
            ("session/0".into(), span(3, Some(0), 10.2, 13.0, "rtmp", "rtmp.buffering")),
            ("session/0".into(), span(4, None, 30.0, 32.0, "player", "player.stall")),
            ("session/1".into(), span(0, None, 20.0, 29.0, "session", "session.join")),
            ("session/1".into(), span(1, Some(0), 20.0, 21.0, "tcp", "tcp.bootstrap")),
            ("session/1".into(), span(2, Some(0), 21.0, 21.5, "hls", "hls.playlist")),
            ("session/1".into(), span(3, Some(0), 21.5, 29.0, "hls", "hls.segments")),
            // A unit with no root (never-joined session): no breakdown.
            ("session/2".into(), span(0, None, 40.0, 41.0, "player", "player.stall")),
        ]
    }

    #[test]
    fn fold_builds_tiled_breakdowns() {
        let bds = fold_breakdowns(&sample_spans());
        assert_eq!(bds.len(), 2);
        let rtmp = &bds[0];
        assert_eq!(rtmp.unit, "session/0");
        assert_eq!(rtmp.protocol, Protocol::Rtmp);
        assert!((rtmp.join_s - 3.0).abs() < 1e-9);
        assert!((rtmp.phases_sum_s() - rtmp.join_s).abs() < 1e-9, "children tile the root");
        assert_eq!(rtmp.dominant_phase().unwrap().0, "rtmp.buffering");
        let hls = &bds[1];
        assert_eq!(hls.protocol, Protocol::Hls);
        assert_eq!(hls.dominant_phase().unwrap().0, "hls.segments");
    }

    #[test]
    fn evaluate_reports_decomposition_and_outliers() {
        // Clone session/1 a few times at normal joins plus one huge outlier
        // so MAD flags exactly the slow one.
        let mut spans = sample_spans();
        for i in 3..10 {
            let j = 3.0 + i as f64 * 0.1; // spread so the MAD is nonzero
            spans.push((format!("session/{i}"), span(0, None, 0.0, j, "session", "session.join")));
            spans
                .push((format!("session/{i}"), span(1, Some(0), 0.0, j, "rtmp", "rtmp.buffering")));
        }
        spans.push(("session/99".into(), span(0, None, 0.0, 55.0, "session", "session.join")));
        spans.push(("session/99".into(), span(1, Some(0), 0.0, 55.0, "hls", "hls.segments")));
        let report =
            evaluate(&SloSpec::paper(), &SessionDataset::new(Vec::new()), &spans, "unit-test");
        assert_eq!(report.n_breakdowns, 10);
        assert_eq!(report.decomposition.len(), 2);
        assert!(!report.outliers.is_empty());
        assert_eq!(report.outliers[0].unit, "session/99", "most extreme outlier first");
        assert_eq!(report.outliers[0].dominant_phase, "hls.segments");
        let json = report.to_json();
        assert!(json.contains("\"dominant_phase\":\"hls.segments\""));
        assert!(!json.contains("NaN"), "report must never print NaN");
        assert_eq!(report.to_json(), json, "rendering is stable");
    }

    #[test]
    fn sketched_mode_agrees_with_exact_on_breakdown_outputs() {
        let mut spans = sample_spans();
        for i in 3..10 {
            let j = 3.0 + i as f64 * 0.1;
            spans.push((format!("session/{i}"), span(0, None, 0.0, j, "session", "session.join")));
            spans
                .push((format!("session/{i}"), span(1, Some(0), 0.0, j, "rtmp", "rtmp.buffering")));
        }
        spans.push(("session/99".into(), span(0, None, 0.0, 55.0, "session", "session.join")));
        spans.push(("session/99".into(), span(1, Some(0), 0.0, 55.0, "hls", "hls.segments")));
        let dataset = SessionDataset::new(Vec::new());
        let exact = evaluate_with_mode(&SloSpec::paper(), &dataset, &spans, "t", EvalMode::Exact);
        let sk = evaluate_with_mode(&SloSpec::paper(), &dataset, &spans, "t", EvalMode::Sketched);
        assert_eq!(sk.n_breakdowns, exact.n_breakdowns);
        assert_eq!(sk.decomposition.len(), exact.decomposition.len());
        for (a, b) in sk.decomposition.iter().zip(exact.decomposition.iter()) {
            assert_eq!(a.n, b.n);
            assert!((a.join_mean_s - b.join_mean_s).abs() < 1e-9);
            assert_eq!(a.phase_means.len(), b.phase_means.len());
            for ((na, ma), (nb, mb)) in a.phase_means.iter().zip(b.phase_means.iter()) {
                assert_eq!(na, nb);
                assert!((ma - mb).abs() < 1e-9);
            }
        }
        // The outlier *set* must match; scores may differ within the
        // sketch's median bucket width.
        let units = |r: &SloReport| r.outliers.iter().map(|o| o.unit.clone()).collect::<Vec<_>>();
        assert_eq!(units(&sk), units(&exact));
        assert_eq!(units(&sk), vec!["session/99".to_string(), "session/1".to_string()]);
    }

    #[test]
    fn explain_renders_tree_and_side_spans() {
        let spans = sample_spans();
        let text = explain_unit("session/0", &spans).unwrap();
        assert!(text.contains("session.join"));
        assert!(text.contains("rtmp.buffering"));
        assert!(text.contains("side spans:"));
        assert!(explain_unit("session/404", &spans).is_none());
    }
}
