//! Constant-memory streaming QoE telemetry (DESIGN.md §11).
//!
//! [`QoeTelemetry`] folds per-session outcomes and per-session phase
//! breakdowns into mergeable sketches: quantile sketches for the headline
//! distributions (join time, stall ratio, RTMP playback latency),
//! streaming moments for means/variances (HLS latency, per-phase
//! decomposition) and a space-saving top-K for dominant-phase
//! attribution. Memory is O(1) in the number of sessions, and `merge` is
//! exact and order-independent for the sketch counts, so a sharded or
//! batched fold produces the same telemetry as a serial one. The
//! full-sample exact paths in [`crate::slo`] and [`crate::compare`]
//! remain the source of truth below [`crate::slo::SKETCH_SESSION_THRESHOLD`];
//! this type is what makes the paths above it — and the live `repro
//! watch` monitor — possible without holding sample vectors.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pscp_client::SessionOutcome;
use pscp_service::select::Protocol;
use pscp_stats::{Moments, QuantileSketch, TopK};

use crate::dataset::SessionDataset;
use crate::slo::PhaseBreakdown;

/// How many dominant phases the attribution top-K tracks.
const DOMINANT_K: usize = 8;

/// Per-protocol accumulator slots (RTMP, HLS, SRT).
const N_PROTOCOLS: usize = 3;

fn pidx(p: Protocol) -> usize {
    match p {
        Protocol::Rtmp => 0,
        Protocol::Hls => 1,
        Protocol::Srt => 2,
    }
}

/// Seconds → integer microseconds for the sketch domain.
fn us(secs: f64) -> u64 {
    (secs * 1e6).round().max(0.0) as u64
}

/// Streaming QoE telemetry over sessions and phase breakdowns.
#[derive(Debug, Clone)]
pub struct QoeTelemetry {
    n_sessions: u64,
    /// Join times (µs) over unlimited-bandwidth sessions; a session that
    /// never joined counts as its full watch duration, matching
    /// [`SessionDataset::join_times_s`].
    pub join_us: QuantileSketch,
    /// Stall ratios (parts-per-million) over unlimited sessions.
    pub stall_ppm: QuantileSketch,
    /// RTMP playbackMeta latencies (µs) over unlimited RTMP sessions.
    pub rtmp_latency_us: QuantileSketch,
    /// HLS capture→render latency (seconds) over unlimited HLS sessions.
    pub hls_latency_s: Moments,
    /// Breakdown join times (µs), all protocols — the MAD-outlier base.
    pub join_bd_us: QuantileSketch,
    /// Per-protocol join-time moments over breakdowns (RTMP, HLS, SRT).
    join_bd: [Moments; N_PROTOCOLS],
    /// Per-phase duration moments, keyed by phase name, per protocol.
    phases: BTreeMap<String, [Moments; N_PROTOCOLS]>,
    /// Dominant-phase counts over breakdowns.
    pub dominant: TopK,
}

impl Default for QoeTelemetry {
    fn default() -> Self {
        QoeTelemetry::new()
    }
}

impl QoeTelemetry {
    /// An empty telemetry accumulator.
    pub fn new() -> QoeTelemetry {
        QoeTelemetry {
            n_sessions: 0,
            join_us: QuantileSketch::new(),
            stall_ppm: QuantileSketch::new(),
            rtmp_latency_us: QuantileSketch::new(),
            hls_latency_s: Moments::new(),
            join_bd_us: QuantileSketch::new(),
            join_bd: [Moments::new(); N_PROTOCOLS],
            phases: BTreeMap::new(),
            dominant: TopK::new(DOMINANT_K),
        }
    }

    /// Folds one completed session. Only unlimited-bandwidth sessions
    /// feed the headline sketches, mirroring the exact SLO objectives.
    pub fn fold_outcome(&mut self, s: &SessionOutcome) {
        self.n_sessions += 1;
        if s.bandwidth_limit_bps.is_some() {
            return;
        }
        self.join_us.observe(us(s.join_time_s().unwrap_or(s.player.session_s)));
        self.stall_ppm.observe((s.stall_ratio() * 1e6).round() as u64);
        match s.protocol {
            Protocol::Rtmp => {
                if let Some(lat) = s.meta.playback_latency_s {
                    self.rtmp_latency_us.observe(us(lat));
                }
            }
            Protocol::Hls => {
                if let Some(lat) = s.player.mean_latency_s() {
                    self.hls_latency_s.observe(lat);
                }
            }
            // SRT sessions feed the protocol-agnostic join/stall sketches
            // above; neither per-protocol latency objective applies.
            Protocol::Srt => {}
        }
    }

    /// Folds one session's phase breakdown.
    pub fn fold_breakdown(&mut self, b: &PhaseBreakdown) {
        let p = pidx(b.protocol);
        self.join_bd_us.observe(us(b.join_s));
        self.join_bd[p].observe(b.join_s);
        for (name, secs) in &b.phases {
            let entry = self.phases.entry(name.clone()).or_insert([Moments::new(); N_PROTOCOLS]);
            entry[p].observe(*secs);
        }
        if let Some((name, _)) = b.dominant_phase() {
            self.dominant.observe(name, 1);
        }
    }

    /// Folds every session of a dataset (outcomes only; breakdowns are
    /// folded separately because they come from the span log).
    pub fn from_dataset(dataset: &SessionDataset) -> QoeTelemetry {
        let mut t = QoeTelemetry::new();
        for s in &dataset.sessions {
            t.fold_outcome(s);
        }
        t
    }

    /// Merges another accumulator in. Sketch counts merge exactly
    /// (order-independent); moments merge via Chan's parallel update.
    pub fn merge(&mut self, other: &QoeTelemetry) {
        self.n_sessions += other.n_sessions;
        self.join_us.merge(&other.join_us);
        self.stall_ppm.merge(&other.stall_ppm);
        self.rtmp_latency_us.merge(&other.rtmp_latency_us);
        self.hls_latency_s.merge(&other.hls_latency_s);
        self.join_bd_us.merge(&other.join_bd_us);
        for p in 0..N_PROTOCOLS {
            self.join_bd[p].merge(&other.join_bd[p]);
        }
        for (name, theirs) in &other.phases {
            let entry = self.phases.entry(name.clone()).or_insert([Moments::new(); N_PROTOCOLS]);
            for p in 0..N_PROTOCOLS {
                entry[p].merge(&theirs[p]);
            }
        }
        self.dominant.merge(&other.dominant);
    }

    /// Sessions folded so far (including bandwidth-limited ones).
    pub fn n_sessions(&self) -> u64 {
        self.n_sessions
    }

    /// Breakdowns folded for `protocol`.
    pub fn breakdown_count(&self, protocol: Protocol) -> u64 {
        self.join_bd[pidx(protocol)].count()
    }

    /// Mean breakdown join time for `protocol`, seconds.
    pub fn join_mean_s(&self, protocol: Protocol) -> f64 {
        self.join_bd[pidx(protocol)].mean()
    }

    /// `(phase name, mean seconds)` for `protocol`, sorted by name.
    /// Sessions missing a phase count as zero, matching the exact
    /// decomposition's sum-over-group / group-size convention.
    pub fn phase_means(&self, protocol: Protocol) -> Vec<(String, f64)> {
        let p = pidx(protocol);
        let n = self.join_bd[p].count();
        if n == 0 {
            return Vec::new();
        }
        self.phases
            .iter()
            .filter(|(_, m)| m[p].count() > 0)
            .map(|(name, m)| (name.clone(), m[p].mean() * (m[p].count() as f64 / n as f64)))
            .collect()
    }

    /// Total bytes held by the sketch state — the number that stays flat
    /// as the session count grows.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<QoeTelemetry>()
            + self.join_us.memory_bytes()
            + self.stall_ppm.memory_bytes()
            + self.rtmp_latency_us.memory_bytes()
            + self.join_bd_us.memory_bytes()
            + self
                .phases
                .keys()
                .map(|k| k.len() + std::mem::size_of::<[Moments; N_PROTOCOLS]>())
                .sum::<usize>()
            + self.dominant.memory_bytes()
    }

    /// SLO objectives from `spec` that are measurable *and* violated in
    /// this snapshot, as stable objective names. Unmeasured objectives
    /// (too few samples) are not violations — same guards as the sketched
    /// SLO evaluator — so an empty watch run exits clean.
    pub fn violations(&self, spec: &crate::slo::SloSpec) -> Vec<&'static str> {
        let mut out = Vec::new();
        if let Some(p90) = self.join_us.quantile(0.90) {
            if p90 as f64 / 1e6 > spec.join_p90_max_s {
                out.push("join_time_p90_s");
            }
        }
        if let Some(p90) = self.stall_ppm.quantile(0.90) {
            if p90 as f64 / 1e6 > spec.stall_ratio_p90_max {
                out.push("stall_ratio_p90");
            }
        }
        if self.rtmp_latency_us.count() >= crate::slo::MIN_QUANTILE_SAMPLES as u64 {
            if let Some(p75) = self.rtmp_latency_us.quantile(0.75) {
                if p75 as f64 / 1e6 > spec.rtmp_latency_p75_max_s {
                    out.push("rtmp_latency_p75_s");
                }
            }
        }
        if !self.hls_latency_s.is_empty() && self.hls_latency_s.mean() < spec.hls_latency_mean_min_s
        {
            out.push("hls_latency_mean_s");
        }
        out
    }

    /// One stable JSON object (no trailing newline) summarising the
    /// telemetry: the `repro watch` snapshot body. Deterministic: fixed
    /// key order, fixed float precision, `null` for unmeasured values.
    pub fn snapshot_json(&self) -> String {
        fn opt_s(v: Option<u64>) -> String {
            v.map(|u| format!("{:.6}", u as f64 / 1e6)).unwrap_or_else(|| "null".to_string())
        }
        let mut s = String::with_capacity(512);
        let _ = write!(s, "{{\"n_sessions\":{}", self.n_sessions);
        let _ = write!(s, ",\"join_p50_s\":{}", opt_s(self.join_us.quantile(0.50)));
        let _ = write!(s, ",\"join_p90_s\":{}", opt_s(self.join_us.quantile(0.90)));
        let _ = write!(s, ",\"stall_ratio_p90\":{}", opt_s(self.stall_ppm.quantile(0.90)));
        let _ = write!(s, ",\"rtmp_latency_p75_s\":{}", opt_s(self.rtmp_latency_us.quantile(0.75)));
        if self.hls_latency_s.is_empty() {
            s.push_str(",\"hls_latency_mean_s\":null");
        } else {
            let _ = write!(s, ",\"hls_latency_mean_s\":{:.6}", self.hls_latency_s.mean());
        }
        s.push_str(",\"phase_means_s\":{");
        // The `srt` key appears only once SRT breakdowns exist, so default
        // (SRT-unselected) snapshots keep their pre-SRT bytes exactly.
        let mut protos = vec![(Protocol::Rtmp, "rtmp"), (Protocol::Hls, "hls")];
        if self.breakdown_count(Protocol::Srt) > 0 {
            protos.push((Protocol::Srt, "srt"));
        }
        for (i, (proto, label)) in protos.into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{label}\":{{");
            for (j, (name, mean)) in self.phase_means(proto).iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{:.6}", name, mean);
            }
            s.push('}');
        }
        s.push_str("},\"dominant_phases\":[");
        for (i, (name, count, _err)) in self.dominant.top().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[\"{}\",{}]", name, count);
        }
        let _ = write!(s, "],\"sketch_bytes\":{}}}", self.memory_bytes());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(unit: &str, protocol: Protocol, phases: &[(&str, f64)]) -> PhaseBreakdown {
        PhaseBreakdown {
            unit: unit.to_string(),
            protocol,
            join_s: phases.iter().map(|(_, s)| s).sum(),
            phases: phases.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
        }
    }

    #[test]
    fn fold_and_merge_agree_with_serial() {
        let bds: Vec<PhaseBreakdown> = (0..100)
            .map(|i| {
                let proto = if i % 3 == 0 { Protocol::Hls } else { Protocol::Rtmp };
                let buf = 0.5 + (i % 17) as f64 * 0.25;
                breakdown(
                    &format!("session/{i}"),
                    proto,
                    &[("api.request", 0.1), ("buffering", buf)],
                )
            })
            .collect();
        let mut serial = QoeTelemetry::new();
        for b in &bds {
            serial.fold_breakdown(b);
        }
        let (left, right) = bds.split_at(33);
        let mut a = QoeTelemetry::new();
        let mut b = QoeTelemetry::new();
        for bd in left {
            a.fold_breakdown(bd);
        }
        for bd in right {
            b.fold_breakdown(bd);
        }
        a.merge(&b);
        assert_eq!(a.join_bd_us, serial.join_bd_us, "sketch counts merge exactly");
        assert_eq!(a.breakdown_count(Protocol::Rtmp), serial.breakdown_count(Protocol::Rtmp));
        assert_eq!(a.dominant.top(), serial.dominant.top());
        assert!((a.join_mean_s(Protocol::Rtmp) - serial.join_mean_s(Protocol::Rtmp)).abs() < 1e-9);
        assert_eq!(a.snapshot_json(), serial.snapshot_json());
    }

    #[test]
    fn phase_means_match_exact_decomposition_convention() {
        // One session missing the "playlist" phase: its mean divides by
        // the group size, not by the number of sessions with the phase.
        let mut t = QoeTelemetry::new();
        t.fold_breakdown(&breakdown("a", Protocol::Hls, &[("playlist", 1.0), ("segments", 2.0)]));
        t.fold_breakdown(&breakdown("b", Protocol::Hls, &[("segments", 4.0)]));
        let means = t.phase_means(Protocol::Hls);
        assert_eq!(means.len(), 2);
        assert!((means[0].1 - 0.5).abs() < 1e-12, "playlist: 1.0 over 2 sessions");
        assert!((means[1].1 - 3.0).abs() < 1e-12, "segments: (2+4)/2");
    }

    #[test]
    fn memory_stays_flat_as_sessions_grow() {
        let mut t = QoeTelemetry::new();
        for i in 0..10_000u64 {
            t.fold_breakdown(&breakdown(
                &format!("session/{i}"),
                Protocol::Rtmp,
                &[("buffering", (i % 100) as f64 * 0.1)],
            ));
        }
        let at_10k = t.memory_bytes();
        for i in 0..90_000u64 {
            t.fold_breakdown(&breakdown(
                &format!("more/{i}"),
                Protocol::Rtmp,
                &[("buffering", (i % 100) as f64 * 0.1)],
            ));
        }
        assert_eq!(t.memory_bytes(), at_10k, "same value range → identical footprint at 10x");
        assert!(at_10k < 256 * 1024, "well under 256 KiB: {at_10k}");
    }

    #[test]
    fn snapshot_json_is_stable_and_nan_free() {
        let t = QoeTelemetry::new();
        let empty = t.snapshot_json();
        assert!(empty.contains("\"join_p90_s\":null"));
        assert!(!empty.contains("NaN"));
        let mut t2 = QoeTelemetry::new();
        t2.fold_breakdown(&breakdown("a", Protocol::Rtmp, &[("buffering", 1.5)]));
        let snap = t2.snapshot_json();
        assert!(snap.contains("\"dominant_phases\":[[\"buffering\",1]]"));
        assert_eq!(snap, t2.snapshot_json());
    }
}
