//! The Periscope JSON API (paper §3, Table 1).
//!
//! "The application communicates with the servers by sending POST requests
//! containing JSON encoded attributes to the following address:
//! `https://api.periscope.tv/api/v2/apiRequest`." The three commands the
//! paper used are modeled with their full request/response shapes, plus
//! `accessVideo` (the command that returns stream endpoints, which the app
//! must issue to start playback).

use pscp_proto::http::Request;
use pscp_proto::json::{parse, Value};
use pscp_proto::ProtoError;
use pscp_simnet::GeoRect;
use pscp_simnet::SimTime;
use pscp_workload::broadcast::{Broadcast, BroadcastId};

/// API base path.
pub const API_BASE: &str = "/api/v2/";

/// A decoded API request.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// Map-area discovery: "Coordinates of a rectangle shaped geographical
    /// area" → "List of broadcasts located inside the area".
    MapGeoBroadcastFeed {
        /// Queried area.
        rect: GeoRect,
        /// When false, only live broadcasts are returned (the crawler "sets
        /// the include_replay attribute value to false").
        include_replay: bool,
    },
    /// Detail lookup: "List of 13-character broadcast IDs" → "Descriptions
    /// of broadcast IDs (incl. nb of viewers)".
    GetBroadcasts {
        /// Requested ids.
        ids: Vec<BroadcastId>,
    },
    /// End-of-session stats upload: "Playback statistics" → "nothing".
    PlaybackMeta {
        /// Watched broadcast.
        broadcast_id: BroadcastId,
        /// Number of stall events.
        n_stalls: u32,
        /// Mean stall duration in seconds (RTMP sessions only; the HLS
        /// player reports only the stall count — §2).
        avg_stall_time_s: Option<f64>,
        /// Playback latency estimate in seconds (RTMP only, like above).
        playback_latency_s: Option<f64>,
    },
    /// Stream endpoint resolution for a broadcast the user wants to watch.
    AccessVideo {
        /// Target broadcast.
        broadcast_id: BroadcastId,
    },
}

impl ApiRequest {
    /// The `apiRequest` name in the URL.
    pub fn name(&self) -> &'static str {
        match self {
            ApiRequest::MapGeoBroadcastFeed { .. } => "mapGeoBroadcastFeed",
            ApiRequest::GetBroadcasts { .. } => "getBroadcasts",
            ApiRequest::PlaybackMeta { .. } => "playbackMeta",
            ApiRequest::AccessVideo { .. } => "accessVideo",
        }
    }

    /// Encodes into an HTTP request with a session cookie header.
    pub fn to_http(&self, session_token: &str) -> Request {
        let body = match self {
            ApiRequest::MapGeoBroadcastFeed { rect, include_replay } => Value::object([
                ("p1_lat", Value::Number(rect.south)),
                ("p1_lng", Value::Number(rect.west)),
                ("p2_lat", Value::Number(rect.north)),
                ("p2_lng", Value::Number(rect.east)),
                ("include_replay", Value::Bool(*include_replay)),
            ]),
            ApiRequest::GetBroadcasts { ids } => Value::object([(
                "broadcast_ids",
                Value::Array(ids.iter().map(|id| Value::str(id.as_string())).collect()),
            )]),
            ApiRequest::PlaybackMeta {
                broadcast_id,
                n_stalls,
                avg_stall_time_s,
                playback_latency_s,
            } => {
                let mut fields = vec![
                    ("broadcast_id", Value::str(broadcast_id.as_string())),
                    ("n_stalls", Value::from(*n_stalls as u64)),
                ];
                if let Some(v) = avg_stall_time_s {
                    fields.push(("avg_stall_time_s", Value::Number(*v)));
                }
                if let Some(v) = playback_latency_s {
                    fields.push(("playback_latency_s", Value::Number(*v)));
                }
                Value::object(fields)
            }
            ApiRequest::AccessVideo { broadcast_id } => {
                Value::object([("broadcast_id", Value::str(broadcast_id.as_string()))])
            }
        };
        Request::post_json(format!("{API_BASE}{}", self.name()), body.to_json())
            .header("x-session", session_token)
    }

    /// Decodes from an HTTP request.
    pub fn from_http(req: &Request) -> Result<ApiRequest, ProtoError> {
        let name = req
            .path
            .strip_prefix(API_BASE)
            .ok_or_else(|| ProtoError::Protocol(format!("bad API path {}", req.path)))?;
        let body = parse(
            std::str::from_utf8(&req.body)
                .map_err(|_| ProtoError::Malformed("non-UTF-8 body".to_string()))?,
        )?;
        let num = |key: &str| -> Result<f64, ProtoError> {
            body.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ProtoError::Malformed(format!("missing number '{key}'")))
        };
        match name {
            "mapGeoBroadcastFeed" => Ok(ApiRequest::MapGeoBroadcastFeed {
                rect: GeoRect::new(num("p1_lat")?, num("p1_lng")?, num("p2_lat")?, num("p2_lng")?),
                include_replay: body.get("include_replay").and_then(Value::as_bool).unwrap_or(true),
            }),
            "getBroadcasts" => {
                let ids = body
                    .get("broadcast_ids")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ProtoError::Malformed("missing broadcast_ids".to_string()))?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .and_then(BroadcastId::parse)
                            .ok_or_else(|| ProtoError::Malformed("bad broadcast id".to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ApiRequest::GetBroadcasts { ids })
            }
            "playbackMeta" => Ok(ApiRequest::PlaybackMeta {
                broadcast_id: body
                    .get("broadcast_id")
                    .and_then(Value::as_str)
                    .and_then(BroadcastId::parse)
                    .ok_or_else(|| ProtoError::Malformed("bad broadcast id".to_string()))?,
                n_stalls: num("n_stalls")? as u32,
                avg_stall_time_s: body.get("avg_stall_time_s").and_then(Value::as_f64),
                playback_latency_s: body.get("playback_latency_s").and_then(Value::as_f64),
            }),
            "accessVideo" => Ok(ApiRequest::AccessVideo {
                broadcast_id: body
                    .get("broadcast_id")
                    .and_then(Value::as_str)
                    .and_then(BroadcastId::parse)
                    .ok_or_else(|| ProtoError::Malformed("bad broadcast id".to_string()))?,
            }),
            other => Err(ProtoError::Protocol(format!("unknown apiRequest '{other}'"))),
        }
    }
}

/// Serializes a broadcast description, the JSON object `getBroadcasts`
/// returns per id.
pub fn broadcast_description(b: &Broadcast, now: SimTime) -> Value {
    Value::object([
        ("id", Value::str(b.id.as_string())),
        ("start_s", Value::Number(b.start.as_secs_f64())),
        ("n_viewers", Value::from(b.viewers_at(now) as u64)),
        ("available_for_replay", Value::Bool(b.replay_available)),
        ("city", Value::str(b.city)),
        ("lat", Value::Number(b.location.lat)),
        ("lng", Value::Number(b.location.lon)),
        ("live", Value::Bool(b.is_live_at(now))),
    ])
}

/// A parsed broadcast description (what the crawler stores per sighting).
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastDescription {
    /// Broadcast id.
    pub id: BroadcastId,
    /// Advertised start time, seconds.
    pub start_s: f64,
    /// Viewer count at response time.
    pub n_viewers: u32,
    /// Replay availability flag.
    pub available_for_replay: bool,
    /// Whether still live at response time.
    pub live: bool,
    /// Advertised latitude.
    pub lat: f64,
    /// Advertised longitude.
    pub lng: f64,
}

impl BroadcastDescription {
    /// Parses a description object.
    pub fn from_json(v: &Value) -> Result<BroadcastDescription, ProtoError> {
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .and_then(BroadcastId::parse)
            .ok_or_else(|| ProtoError::Malformed("bad id".to_string()))?;
        let get_num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| ProtoError::Malformed(format!("missing '{k}'")))
        };
        Ok(BroadcastDescription {
            id,
            start_s: get_num("start_s")?,
            n_viewers: get_num("n_viewers")? as u32,
            available_for_replay: v
                .get("available_for_replay")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            live: v.get("live").and_then(Value::as_bool).unwrap_or(false),
            lat: get_num("lat")?,
            lng: get_num("lng")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_feed_roundtrip() {
        let req = ApiRequest::MapGeoBroadcastFeed {
            rect: GeoRect::new(-10.0, -20.0, 10.0, 20.0),
            include_replay: false,
        };
        let http = req.to_http("tok");
        assert_eq!(http.path, "/api/v2/mapGeoBroadcastFeed");
        assert_eq!(http.get_header("x-session"), Some("tok"));
        assert_eq!(ApiRequest::from_http(&http).unwrap(), req);
    }

    #[test]
    fn get_broadcasts_roundtrip() {
        let req = ApiRequest::GetBroadcasts { ids: vec![BroadcastId(1), BroadcastId(999_999)] };
        let http = req.to_http("tok");
        assert_eq!(ApiRequest::from_http(&http).unwrap(), req);
    }

    #[test]
    fn playback_meta_roundtrip_rtmp_fields() {
        let req = ApiRequest::PlaybackMeta {
            broadcast_id: BroadcastId(5),
            n_stalls: 2,
            avg_stall_time_s: Some(3.5),
            playback_latency_s: Some(2.25),
        };
        assert_eq!(ApiRequest::from_http(&req.to_http("t")).unwrap(), req);
    }

    #[test]
    fn playback_meta_hls_omits_details() {
        // §2: "after an HTTP Live Streaming (HLS) session, the app reports
        // only the number of stall events".
        let req = ApiRequest::PlaybackMeta {
            broadcast_id: BroadcastId(5),
            n_stalls: 1,
            avg_stall_time_s: None,
            playback_latency_s: None,
        };
        let http = req.to_http("t");
        assert!(!String::from_utf8_lossy(&http.body).contains("avg_stall_time_s"));
        assert_eq!(ApiRequest::from_http(&http).unwrap(), req);
    }

    #[test]
    fn access_video_roundtrip() {
        let req = ApiRequest::AccessVideo { broadcast_id: BroadcastId(77) };
        assert_eq!(ApiRequest::from_http(&req.to_http("t")).unwrap(), req);
    }

    #[test]
    fn unknown_api_request_rejected() {
        let http = Request::post_json("/api/v2/unknownThing", "{}");
        assert!(ApiRequest::from_http(&http).is_err());
    }

    #[test]
    fn bad_path_rejected() {
        let http = Request::post_json("/api/v1/getBroadcasts", "{}");
        assert!(ApiRequest::from_http(&http).is_err());
    }

    #[test]
    fn missing_fields_rejected() {
        let http = Request::post_json("/api/v2/mapGeoBroadcastFeed", r#"{"p1_lat":1}"#);
        assert!(ApiRequest::from_http(&http).is_err());
    }

    #[test]
    fn description_roundtrip() {
        use pscp_media::audio::AudioBitrate;
        use pscp_media::content::ContentClass;
        use pscp_simnet::{GeoPoint, SimDuration};
        use pscp_workload::broadcast::DeviceProfile;
        let b = Broadcast {
            id: BroadcastId(4242),
            location: GeoPoint::new(48.86, 2.35),
            city: "Paris",
            start: SimTime::from_secs(50),
            duration: SimDuration::from_secs(600),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 12.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: 3,
            target_bitrate_bps: 300_000.0,
        };
        let now = SimTime::from_secs(100);
        let desc = BroadcastDescription::from_json(&broadcast_description(&b, now)).unwrap();
        assert_eq!(desc.id, b.id);
        assert!(desc.live);
        assert!(desc.n_viewers > 0);
        assert!(desc.available_for_replay);
        assert_eq!(desc.start_s, 50.0);
    }
}
