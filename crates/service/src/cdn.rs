//! The Fastly-like CDN serving HLS.
//!
//! §5: "All the HLS streams were delivered from only two distinct IP
//! addresses, which maxmind.com says are located somewhere in Europe and in
//! San Francisco. ... the Fastly CDN server is chosen based on the location
//! of the viewing device."

use pscp_simnet::GeoPoint;

/// A CDN point of presence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdnPop {
    /// The European POP.
    Europe,
    /// The San Francisco POP.
    SanFrancisco,
}

impl CdnPop {
    /// Both POPs.
    pub const ALL: [CdnPop; 2] = [CdnPop::Europe, CdnPop::SanFrancisco];

    /// POP location.
    pub fn location(self) -> GeoPoint {
        match self {
            CdnPop::Europe => GeoPoint::new(50.11, 8.68), // Frankfurt
            CdnPop::SanFrancisco => GeoPoint::new(37.77, -122.42),
        }
    }

    /// The (single) anycast-ish IP the paper observed per POP.
    pub fn ip(self) -> &'static str {
        match self {
            CdnPop::Europe => "185.31.18.133",
            CdnPop::SanFrancisco => "23.235.47.133",
        }
    }

    /// Hostname label used in captures.
    pub fn hostname(self) -> &'static str {
        match self {
            CdnPop::Europe => "fastly-eu.periscope.tv",
            CdnPop::SanFrancisco => "fastly-sf.periscope.tv",
        }
    }
}

/// Picks the POP for a session: nearest to the viewer most of the time,
/// with a small deterministic fraction routed to the other POP (anycast /
/// load-balancing quirks) — which is how the paper's single vantage point
/// still observed both the European and San Francisco endpoints.
pub fn pop_for_session(viewer: &GeoPoint, entropy: u64) -> CdnPop {
    let near = pop_for(viewer);
    // ~12% of sessions land on the far POP.
    let mut z = entropy.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= z >> 31;
    if z % 100 < 12 {
        CdnPop::ALL.into_iter().find(|p| *p != near).unwrap_or(near)
    } else {
        near
    }
}

/// Picks the POP nearest the viewer.
pub fn pop_for(viewer: &GeoPoint) -> CdnPop {
    CdnPop::ALL
        .into_iter()
        .min_by(|a, b| {
            viewer
                .distance_km(&a.location())
                .partial_cmp(&viewer.distance_km(&b.location()))
                .expect("finite distances")
        })
        .expect("two POPs exist")
}

/// One-way propagation delay from the POP to the viewer.
pub fn pop_delay(viewer: &GeoPoint) -> pscp_simnet::SimDuration {
    pop_for(viewer).location().propagation_to(viewer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finland_uses_europe() {
        assert_eq!(pop_for(&GeoPoint::new(60.17, 24.94)), CdnPop::Europe);
    }

    #[test]
    fn california_uses_sf() {
        assert_eq!(pop_for(&GeoPoint::new(34.05, -118.24)), CdnPop::SanFrancisco);
    }

    #[test]
    fn tokyo_nearest_is_sf() {
        // Great-circle: Tokyo→SF ≈ 8,280 km, Tokyo→Frankfurt ≈ 9,370 km.
        assert_eq!(pop_for(&GeoPoint::new(35.68, 139.69)), CdnPop::SanFrancisco);
    }

    #[test]
    fn session_routing_mostly_near_sometimes_far() {
        let hel = GeoPoint::new(60.17, 24.94);
        let mut far = 0;
        let n = 1000;
        for entropy in 0..n {
            if pop_for_session(&hel, entropy) != CdnPop::Europe {
                far += 1;
            }
        }
        // ~12% diverted, and deterministic per entropy.
        assert!((60..200).contains(&far), "far={far}");
        assert_eq!(pop_for_session(&hel, 42), pop_for_session(&hel, 42));
    }

    #[test]
    fn pops_have_distinct_ips() {
        assert_ne!(CdnPop::Europe.ip(), CdnPop::SanFrancisco.ip());
        assert_eq!(CdnPop::ALL.len(), 2);
    }

    #[test]
    fn nearby_viewer_low_delay() {
        let frankfurt_local = GeoPoint::new(50.0, 8.5);
        assert!(pop_delay(&frankfurt_local).as_millis() < 10);
        let sydney = GeoPoint::new(-33.87, 151.21);
        assert!(pop_delay(&sydney).as_millis() > 40);
    }
}
