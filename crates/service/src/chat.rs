//! The chat service and its profile-picture side traffic.
//!
//! §3: "Viewers can use text chat and emoticons to give feedback to the
//! broadcaster. The chat becomes full when certain number of viewers have
//! joined after which new joining users cannot send messages." §5.1 found
//! the QoE-relevant twist: "the JSON encoded chat messages are received
//! even when chat is off, but when the chat is on, image downloads from
//! Amazon S3 servers appear in the traffic" — profile pictures, some
//! downloaded repeatedly because the app does not cache them, inflating one
//! measured session from ~500 kbps to 3.5 Mbps.

use pscp_proto::json::Value;
use pscp_simnet::dist;
use pscp_simnet::rng::Rng;
use pscp_simnet::SimTime;

/// Chat room behaviour parameters.
#[derive(Debug, Clone)]
pub struct ChatConfig {
    /// Viewers after which the chat is "full" (no new senders).
    pub full_at: u32,
    /// Per-viewer heart (emoticon) rate, events/second. Hearts are tiny
    /// and are NOT capped by chat fullness — anyone can tap.
    pub per_user_heart_rate: f64,
    /// Per-chatting-user message rate, messages/second.
    pub per_user_msg_rate: f64,
    /// Fraction of users with a profile picture.
    pub picture_prob: f64,
    /// Mean profile picture size in bytes (S3 JPEG thumbnails).
    pub mean_picture_bytes: f64,
}

impl Default for ChatConfig {
    fn default() -> Self {
        ChatConfig {
            full_at: 100,
            per_user_heart_rate: 0.08,
            // Active rooms run several messages per second in aggregate;
            // with uncached ~30 kB pictures per message this is what drives
            // the paper's 0.5 -> 3.5 Mbps traffic explosion (§5.1).
            per_user_msg_rate: 0.12,
            picture_prob: 0.75,
            mean_picture_bytes: 30_000.0,
        }
    }
}

/// One chat message as sent over the WebSocket.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatMessage {
    /// Delivery instant.
    pub at: SimTime,
    /// Sending user id.
    pub user_id: u64,
    /// JSON body length in bytes (what travels in the WS text frame).
    pub body_len: usize,
    /// Profile picture reference, if this user has one.
    pub picture: Option<PictureRef>,
}

/// A profile picture on S3.
#[derive(Debug, Clone, PartialEq)]
pub struct PictureRef {
    /// Download URL (stable per user — caching *would* work, the app just
    /// doesn't do it).
    pub url: String,
    /// Image size in bytes.
    pub bytes: usize,
}

impl ChatMessage {
    /// Renders the JSON body the server pushes.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("kind", Value::str("chat")),
            ("user", Value::str(format!("u{}", self.user_id))),
            ("text", Value::str("x".repeat(self.body_len.saturating_sub(90).max(4)))),
        ];
        if let Some(pic) = &self.picture {
            fields.push(("profile_image_url", Value::str(pic.url.clone())));
        }
        Value::object(fields)
    }
}

/// A heart (emoticon) event: §3's "text chat and emoticons". Hearts are
/// a handful of bytes of JSON each, batched by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heart {
    /// Delivery instant.
    pub at: SimTime,
    /// Hearts coalesced into this server push.
    pub count: u32,
}

impl Heart {
    /// Wire size of the batched heart JSON, bytes.
    pub fn wire_len(&self) -> usize {
        // {"kind":"heart","n":N}
        24 + (self.count as f64).log10() as usize
    }
}

/// A chat room attached to one broadcast.
#[derive(Debug)]
pub struct ChatRoom {
    config: ChatConfig,
    /// Stable per-user picture assignment: user id → picture size (None if
    /// the user has no picture). Filled lazily.
    pictures: std::collections::HashMap<u64, Option<usize>>,
}

impl ChatRoom {
    /// Creates a room.
    pub fn new(config: ChatConfig) -> Self {
        ChatRoom { config, pictures: std::collections::HashMap::new() }
    }

    /// Number of users actually able to chat given `viewers` present.
    pub fn active_chatters(&self, viewers: u32) -> u32 {
        viewers.min(self.config.full_at)
    }

    /// Generates the heart pushes delivered in `[from, to)`. The server
    /// batches hearts every ~500 ms, so the event rate stays modest even
    /// for huge rooms while the counts grow.
    pub fn hearts_between<R: Rng + ?Sized>(
        &self,
        from: SimTime,
        to: SimTime,
        viewers: u32,
        rng: &mut R,
    ) -> Vec<Heart> {
        assert!(to >= from, "interval must be forward");
        // Tap rate saturates: beyond a few thousand viewers most lurk.
        let rate = (viewers.min(3000) as f64) * self.config.per_user_heart_rate;
        if rate <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut t = from.as_secs_f64();
        let end = to.as_secs_f64();
        let batch_s = 0.5;
        while t < end {
            let expected = rate * batch_s;
            // Poisson-ish count via exponential thinning.
            let count = (expected * dist::lognormal(rng, 0.0, 0.4)).round() as u32;
            if count > 0 {
                out.push(Heart { at: SimTime::from_micros((t * 1e6) as u64), count });
            }
            t += batch_s;
        }
        out
    }

    /// Generates the messages delivered in `[from, to)` for a broadcast
    /// with the given concurrent viewer count.
    pub fn messages_between<R: Rng + ?Sized>(
        &mut self,
        from: SimTime,
        to: SimTime,
        viewers: u32,
        rng: &mut R,
    ) -> Vec<ChatMessage> {
        assert!(to >= from, "interval must be forward");
        let chatters = self.active_chatters(viewers);
        if chatters == 0 {
            return Vec::new();
        }
        let rate = chatters as f64 * self.config.per_user_msg_rate;
        let mut out = Vec::new();
        let mut t = from.as_secs_f64();
        let end = to.as_secs_f64();
        loop {
            t += dist::exponential(rng, rate);
            if t >= end {
                break;
            }
            // Senders are zipf-ish: a few users dominate the conversation.
            let user_rank = dist::zipf(rng, chatters.max(1) as u64, 1.3);
            let user_id = user_rank; // rank doubles as a stable id per room
            let picture_prob = self.config.picture_prob;
            let mean_pic = self.config.mean_picture_bytes;
            let pic_entry = self.pictures.entry(user_id).or_insert_with(|| {
                dist::coin(rng, picture_prob)
                    .then(|| (mean_pic * dist::lognormal(rng, 0.0, 0.5)).round() as usize)
            });
            let picture = pic_entry.map(|bytes| PictureRef {
                url: format!("https://s3.amazonaws.com/profile_images/u{user_id}.jpg"),
                bytes,
            });
            let body_len = 90 + dist::exponential(rng, 1.0 / 40.0) as usize;
            out.push(ChatMessage {
                at: SimTime::from_micros((t * 1e6) as u64),
                user_id,
                body_len,
                picture,
            });
        }
        out
    }
}

/// Convenience: expected chat message rate (messages/second) at a viewer
/// count, for capacity planning in tests.
pub fn expected_message_rate(config: &ChatConfig, viewers: u32) -> f64 {
    viewers.min(config.full_at) as f64 * config.per_user_msg_rate
}

/// Expected downstream chat traffic in bits/second when the chat pane is
/// on: JSON messages plus (uncached) profile pictures.
pub fn expected_chat_rate_bps(config: &ChatConfig, viewers: u32) -> f64 {
    let msgs = expected_message_rate(config, viewers);
    let json = msgs * 130.0 * 8.0;
    let pics = msgs * config.picture_prob * config.mean_picture_bytes * 8.0;
    json + pics
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::RngFactory;

    fn room() -> (ChatRoom, pscp_simnet::rng::CounterRng) {
        (ChatRoom::new(ChatConfig::default()), RngFactory::new(8).stream("chat"))
    }

    #[test]
    fn no_viewers_no_messages() {
        let (mut room, mut rng) = room();
        let msgs = room.messages_between(SimTime::ZERO, SimTime::from_secs(60), 0, &mut rng);
        assert!(msgs.is_empty());
    }

    #[test]
    fn message_rate_scales_with_viewers_up_to_full() {
        let (mut room, mut rng) = room();
        let count = |viewers: u32, rng: &mut pscp_simnet::rng::CounterRng, room: &mut ChatRoom| {
            room.messages_between(SimTime::ZERO, SimTime::from_secs(600), viewers, rng).len()
        };
        let small = count(10, &mut rng, &mut room);
        let big = count(100, &mut rng, &mut room);
        let huge = count(5000, &mut rng, &mut room);
        assert!(big > small * 4, "small={small} big={big}");
        // Chat-full cap: 5000 viewers no busier than 100.
        let ratio = huge as f64 / big as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn messages_ordered_and_in_window() {
        let (mut room, mut rng) = room();
        let from = SimTime::from_secs(30);
        let to = SimTime::from_secs(90);
        let msgs = room.messages_between(from, to, 50, &mut rng);
        assert!(!msgs.is_empty());
        for w in msgs.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        assert!(msgs.iter().all(|m| m.at >= from && m.at < to));
    }

    #[test]
    fn picture_urls_stable_per_user() {
        let (mut room, mut rng) = room();
        let msgs = room.messages_between(SimTime::ZERO, SimTime::from_secs(1200), 80, &mut rng);
        let mut by_user: std::collections::HashMap<u64, &PictureRef> =
            std::collections::HashMap::new();
        let mut repeats = 0;
        for m in &msgs {
            if let Some(pic) = &m.picture {
                if let Some(prev) = by_user.get(&m.user_id) {
                    assert_eq!(prev.url, pic.url, "url must be stable per user");
                    assert_eq!(prev.bytes, pic.bytes);
                    repeats += 1;
                } else {
                    by_user.insert(m.user_id, pic);
                }
            }
        }
        // Zipf senders: plenty of repeat messages → the no-cache bug has
        // something to amplify.
        assert!(repeats > 10, "repeats={repeats}");
    }

    #[test]
    fn some_users_lack_pictures() {
        let (mut room, mut rng) = room();
        let msgs = room.messages_between(SimTime::ZERO, SimTime::from_secs(1200), 100, &mut rng);
        let with: usize = msgs.iter().filter(|m| m.picture.is_some()).count();
        let without = msgs.len() - with;
        assert!(with > 0 && without > 0, "with={with} without={without}");
    }

    #[test]
    fn json_body_parses() {
        let (mut room, mut rng) = room();
        let msgs = room.messages_between(SimTime::ZERO, SimTime::from_secs(120), 50, &mut rng);
        let m = msgs.iter().find(|m| m.picture.is_some()).expect("some picture");
        let v = pscp_proto::json::parse(&m.to_json().to_json()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("chat"));
        assert!(v.get("profile_image_url").unwrap().as_str().unwrap().contains("s3.amazonaws.com"));
    }

    #[test]
    fn expected_rate_helper() {
        let cfg = ChatConfig::default();
        assert_eq!(expected_message_rate(&cfg, 0), 0.0);
        assert!((expected_message_rate(&cfg, 50) - 6.0).abs() < 1e-9);
        assert_eq!(expected_message_rate(&cfg, 10_000), expected_message_rate(&cfg, 100));
    }

    #[test]
    fn hearts_scale_with_viewers_and_batch() {
        let (room, mut rng) = room();
        let hearts = |viewers: u32, rng: &mut pscp_simnet::rng::CounterRng| {
            room.hearts_between(SimTime::ZERO, SimTime::from_secs(60), viewers, rng)
        };
        let none = hearts(0, &mut rng);
        assert!(none.is_empty());
        let small: u32 = hearts(10, &mut rng).iter().map(|h| h.count).sum();
        let big: u32 = hearts(1000, &mut rng).iter().map(|h| h.count).sum();
        assert!(big > small * 10, "small={small} big={big}");
        // Batched: event count bounded by the 0.5 s cadence.
        let events = hearts(5000, &mut rng);
        assert!(events.len() <= 121, "events={}", events.len());
        for h in &events {
            assert!(h.wire_len() >= 24);
        }
    }

    #[test]
    fn determinism() {
        let f = RngFactory::new(99);
        let run = || {
            let mut rng = f.stream("det");
            let mut room = ChatRoom::new(ChatConfig::default());
            room.messages_between(SimTime::ZERO, SimTime::from_secs(300), 60, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
