//! Broadcast discovery: map visibility and rate limiting.
//!
//! Two engineering facts from §4 shaped the paper's crawler, and both live
//! here:
//!
//! 1. **Zoom-dependent visibility** — "when specifying a smaller area, i.e.
//!    when user zooms in the map, new broadcasts are discovered for the same
//!    area. Therefore, to find a large fraction of the broadcasts, the
//!    crawler must explore the world using small enough areas." The map
//!    feed returns a bounded, popularity-biased sample whose cap grows with
//!    zoom level.
//! 2. **Rate limiting** — "Periscope servers use rate limiting so that too
//!    frequent requests will be answered with HTTP 429", per account, which
//!    forces pacing and motivates the paper's four parallel crawler
//!    accounts.

use pscp_simnet::{GeoRect, SimDuration, SimTime};
use pscp_workload::broadcast::Broadcast;
use pscp_workload::population::Population;
use std::collections::HashMap;

/// Visibility model parameters.
#[derive(Debug, Clone)]
pub struct VisibilityConfig {
    /// Results returned for a world-scale query.
    pub base_cap: usize,
    /// Additional results per quadtree zoom level (area quartering).
    pub cap_per_zoom: usize,
    /// Hard ceiling on results per query.
    pub max_cap: usize,
}

impl Default for VisibilityConfig {
    fn default() -> Self {
        VisibilityConfig { base_cap: 30, cap_per_zoom: 16, max_cap: 400 }
    }
}

impl VisibilityConfig {
    /// Result cap for a query over `rect`.
    pub fn cap_for(&self, rect: &GeoRect) -> usize {
        let world = GeoRect::WORLD.deg_area();
        let area = rect.deg_area().max(1e-6);
        // Zoom level: how many quarterings from world scale.
        let zoom = (world / area).log(4.0).max(0.0);
        (self.base_cap + (zoom * self.cap_per_zoom as f64) as usize).min(self.max_cap)
    }
}

/// Per-account API rate limiter (token bucket).
#[derive(Debug, Clone)]
pub struct RateLimiter {
    /// Maximum burst of requests.
    pub burst: u32,
    /// Minimum sustained interval between requests.
    pub interval: SimDuration,
    state: HashMap<String, (f64, SimTime)>,
}

impl RateLimiter {
    /// Creates a limiter allowing `burst` immediate requests and one per
    /// `interval` sustained.
    pub fn new(burst: u32, interval: SimDuration) -> Self {
        assert!(burst >= 1);
        RateLimiter { burst, interval, state: HashMap::new() }
    }

    /// Default limiter calibrated so a crawler pacing ~1 request/second
    /// passes while unpaced replay loops trip 429s.
    pub fn periscope_default() -> Self {
        RateLimiter::new(8, SimDuration::from_millis(700))
    }

    /// Accounts a request from `user` at `now`. Returns false if the
    /// request must be rejected with 429.
    pub fn allow(&mut self, user: &str, now: SimTime) -> bool {
        let (tokens, updated) =
            self.state.entry(user.to_string()).or_insert((self.burst as f64, now));
        let dt = now.saturating_since(*updated).as_secs_f64();
        let rate = 1.0 / self.interval.as_secs_f64();
        *tokens = (*tokens + dt * rate).min(self.burst as f64);
        *updated = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The directory: wraps the population with the visibility model.
#[derive(Debug)]
pub struct Directory {
    visibility: VisibilityConfig,
}

impl Directory {
    /// Creates a directory with the given visibility model.
    pub fn new(visibility: VisibilityConfig) -> Self {
        Directory { visibility }
    }

    /// Executes a map query at `now`: live, discoverable broadcasts in
    /// `rect`, popularity-biased and capped by zoom level.
    ///
    /// The bias is deterministic: broadcasts are ranked by a stable score
    /// mixing viewer count with a per-(broadcast, minute) hash, so two
    /// queries in the same minute agree while the hidden tail rotates over
    /// time — the behaviour that makes repeated deep crawls keep finding a
    /// few new broadcasts.
    pub fn map_query<'a>(
        &self,
        population: &'a Population,
        rect: &GeoRect,
        now: SimTime,
    ) -> Vec<&'a Broadcast> {
        let mut candidates = population.discoverable_in(rect, now);
        let cap = self.visibility.cap_for(rect);
        if candidates.len() <= cap {
            return candidates;
        }
        let minute = now.as_micros() / 60_000_000;
        candidates.sort_by_cached_key(|b| {
            // Popularity dominates; hash perturbs the order below the fold.
            let viewers = b.viewers_at(now) as u64;
            let h = splitmix(b.id.0 ^ minute.wrapping_mul(0x517c_c1b7_2722_0a95)) % 1000;
            std::cmp::Reverse(viewers * 1000 + h)
        });
        candidates.truncate(cap);
        candidates
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::RngFactory;
    use pscp_workload::population::PopulationConfig;

    #[test]
    fn cap_grows_with_zoom() {
        let v = VisibilityConfig::default();
        let world = v.cap_for(&GeoRect::WORLD);
        let quad = v.cap_for(&GeoRect::new(0.0, 0.0, 90.0, 180.0));
        let city = v.cap_for(&GeoRect::new(41.0, 28.0, 41.5, 29.0));
        assert!(world < quad, "world={world} quad={quad}");
        assert!(quad < city, "quad={quad} city={city}");
        assert!(city <= v.max_cap);
    }

    #[test]
    fn rate_limiter_allows_burst_then_blocks() {
        let mut rl = RateLimiter::new(3, SimDuration::from_secs(1));
        let t = SimTime::from_secs(10);
        assert!(rl.allow("u", t));
        assert!(rl.allow("u", t));
        assert!(rl.allow("u", t));
        assert!(!rl.allow("u", t), "burst exhausted");
    }

    #[test]
    fn rate_limiter_refills_over_time() {
        let mut rl = RateLimiter::new(2, SimDuration::from_secs(1));
        let t = SimTime::from_secs(10);
        assert!(rl.allow("u", t));
        assert!(rl.allow("u", t));
        assert!(!rl.allow("u", t));
        assert!(rl.allow("u", t + SimDuration::from_millis(1100)));
    }

    #[test]
    fn rate_limiter_per_user() {
        let mut rl = RateLimiter::new(1, SimDuration::from_secs(10));
        let t = SimTime::from_secs(1);
        assert!(rl.allow("a", t));
        assert!(!rl.allow("a", t));
        assert!(rl.allow("b", t), "other account unaffected");
    }

    #[test]
    fn paced_crawler_never_blocked() {
        let mut rl = RateLimiter::periscope_default();
        let mut t = SimTime::from_secs(1);
        for _ in 0..100 {
            assert!(rl.allow("crawler", t));
            t += SimDuration::from_millis(1000);
        }
    }

    fn test_population() -> &'static Population {
        static POP: std::sync::OnceLock<Population> = std::sync::OnceLock::new();
        POP.get_or_init(|| Population::generate(PopulationConfig::medium(), &RngFactory::new(31)))
    }

    #[test]
    fn world_query_capped() {
        let p = test_population();
        let d = Directory::new(VisibilityConfig::default());
        let t = SimTime::from_secs(3600);
        let results = d.map_query(p, &GeoRect::WORLD, t);
        assert_eq!(results.len(), VisibilityConfig::default().cap_for(&GeoRect::WORLD));
        // All returned broadcasts are live and in the rect.
        assert!(results.iter().all(|b| b.is_live_at(t)));
    }

    #[test]
    fn zooming_reveals_more() {
        // The crawler's core observation: querying the four quadrants of an
        // area yields more distinct broadcasts than querying the area once.
        let p = test_population();
        let d = Directory::new(VisibilityConfig::default());
        let t = SimTime::from_secs(3600);
        let whole: std::collections::HashSet<u64> =
            d.map_query(p, &GeoRect::WORLD, t).iter().map(|b| b.id.0).collect();
        let mut split: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for q in GeoRect::WORLD.quadrants() {
            split.extend(d.map_query(p, &q, t).iter().map(|b| b.id.0));
        }
        assert!(split.len() > whole.len() * 2, "whole={} split={}", whole.len(), split.len());
    }

    #[test]
    fn queries_mostly_stable_within_minute() {
        // The tie-break hash is fixed per minute; viewer counts still creep
        // with broadcast progress, so demand high overlap rather than
        // identity.
        let p = test_population();
        let d = Directory::new(VisibilityConfig::default());
        let t = SimTime::from_secs(3600);
        let a: std::collections::HashSet<u64> =
            d.map_query(p, &GeoRect::WORLD, t).iter().map(|b| b.id.0).collect();
        let b: std::collections::HashSet<u64> = d
            .map_query(p, &GeoRect::WORLD, t + SimDuration::from_secs(5))
            .iter()
            .map(|b| b.id.0)
            .collect();
        let overlap = a.intersection(&b).count() as f64 / a.len() as f64;
        assert!(overlap > 0.8, "overlap={overlap}");
    }

    #[test]
    fn popular_broadcasts_always_visible() {
        let p = test_population();
        let d = Directory::new(VisibilityConfig::default());
        let t = SimTime::from_secs(3600);
        let results = d.map_query(p, &GeoRect::WORLD, t);
        let min_shown = results.iter().map(|b| b.viewers_at(t)).min().unwrap_or(0);
        // The world's most popular live broadcast must be in the top-30.
        let max_live = p
            .live_at(t)
            .iter()
            .filter(|b| b.discoverable_at(t))
            .map(|b| b.viewers_at(t))
            .max()
            .unwrap_or(0);
        assert!(results.iter().any(|b| b.viewers_at(t) == max_live));
        let _ = min_shown;
    }
}
