//! The RTMP ingest fleet.
//!
//! §5: "87 different Amazon servers were employed to deliver the RTMP
//! streams. We could locate only nine of them ... among those nine there
//! were at least one in each continent, except for Africa, which indicates
//! that the server is chosen based on the location of the broadcaster."
//! Confirmed by \[18\]: "the RTMP server nearest to the broadcasting device is
//! chosen when the broadcast is initialized."

use pscp_simnet::GeoPoint;

/// An EC2 region hosting vidman ingest servers.
#[derive(Debug, Clone, Copy)]
pub struct IngestRegion {
    /// Periscope-style region name (the `vidman-<region>` DNS label).
    pub name: &'static str,
    /// Region location.
    pub lat: f64,
    /// Region longitude.
    pub lon: f64,
    /// Number of vidman instances in the region.
    pub servers: u32,
}

/// The nine observable regions — every continent except Africa — sized so
/// the fleet totals 87 servers.
pub const REGIONS: &[IngestRegion] = &[
    IngestRegion { name: "us-west-1", lat: 37.35, lon: -121.96, servers: 14 },
    IngestRegion { name: "us-east-1", lat: 38.95, lon: -77.45, servers: 16 },
    IngestRegion { name: "eu-central-1", lat: 50.11, lon: 8.68, servers: 13 },
    IngestRegion { name: "eu-west-1", lat: 53.34, lon: -6.26, servers: 10 },
    IngestRegion { name: "ap-northeast-1", lat: 35.68, lon: 139.69, servers: 9 },
    IngestRegion { name: "ap-southeast-1", lat: 1.35, lon: 103.82, servers: 8 },
    IngestRegion { name: "ap-southeast-2", lat: -33.87, lon: 151.21, servers: 6 },
    IngestRegion { name: "sa-east-1", lat: -23.55, lon: -46.63, servers: 7 },
    IngestRegion { name: "ap-south-1", lat: 19.08, lon: 72.88, servers: 4 },
];

/// A concrete ingest server assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IngestServer {
    /// Region name.
    pub region: &'static str,
    /// Server index within the region.
    pub index: u32,
}

impl IngestServer {
    /// The client-facing DNS name (`vidman-…periscope.tv`).
    pub fn hostname(&self) -> String {
        format!("vidman-{}-{:02}.periscope.tv", self.region, self.index)
    }

    /// The reverse-lookup name exposing the EC2 substrate, as the paper
    /// observed (`ec2-….compute.amazonaws.com`).
    pub fn reverse_dns(&self) -> String {
        // Stable pseudo-IP from region and index, in EC2's public ranges.
        let h =
            self.region.bytes().fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
        let ip = (54, 64 + (h % 128) as u8, (h / 7 % 256) as u8, (self.index * 3 + 7) as u8);
        format!("ec2-{}-{}-{}-{}.{}.compute.amazonaws.com", ip.0, ip.1, ip.2, ip.3, self.region)
    }

    /// The region's location (for RTT modeling).
    pub fn location(&self) -> GeoPoint {
        let r = REGIONS
            .iter()
            .find(|r| r.name == self.region)
            .expect("server carries a known region name");
        GeoPoint::new(r.lat, r.lon)
    }
}

/// Total number of ingest servers.
pub fn fleet_size() -> u32 {
    REGIONS.iter().map(|r| r.servers).sum()
}

/// Assigns the ingest server for a broadcaster: nearest region, then a
/// stable per-broadcast server within it (load spreading by id hash).
pub fn assign_server(broadcaster: &GeoPoint, broadcast_id: u64) -> IngestServer {
    let region = REGIONS
        .iter()
        .min_by(|a, b| {
            let da = broadcaster.distance_km(&GeoPoint::new(a.lat, a.lon));
            let db = broadcaster.distance_km(&GeoPoint::new(b.lat, b.lon));
            da.partial_cmp(&db).expect("distances are finite")
        })
        .expect("region list is non-empty");
    IngestServer { region: region.name, index: (broadcast_id % region.servers as u64) as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_totals_87() {
        assert_eq!(fleet_size(), 87);
    }

    #[test]
    fn regions_span_continents_except_africa() {
        assert_eq!(REGIONS.len(), 9);
        // North America, South America, Europe, Asia, Oceania present.
        assert!(REGIONS.iter().any(|r| r.lon < -60.0 && r.lat > 20.0));
        assert!(REGIONS.iter().any(|r| r.lat < -20.0 && r.lon < -40.0));
        assert!(REGIONS.iter().any(|r| (-10.0..30.0).contains(&r.lon) && r.lat > 45.0));
        assert!(REGIONS.iter().any(|r| r.lon > 100.0 && r.lat > 30.0));
        assert!(REGIONS.iter().any(|r| r.lat < -30.0 && r.lon > 140.0));
        // No region in Africa (roughly lat -35..35, lon -20..50, excluding
        // Europe/Middle East which sit above lat 35 or east of lon 50).
        assert!(!REGIONS
            .iter()
            .any(|r| (-35.0..35.0).contains(&r.lat) && (-20.0..50.0).contains(&r.lon)));
    }

    #[test]
    fn assignment_picks_nearest_region() {
        let helsinki = GeoPoint::new(60.17, 24.94);
        assert_eq!(assign_server(&helsinki, 1).region, "eu-central-1");
        let sf = GeoPoint::new(37.77, -122.42);
        assert_eq!(assign_server(&sf, 1).region, "us-west-1");
        let tokyo = GeoPoint::new(35.68, 139.69);
        assert_eq!(assign_server(&tokyo, 1).region, "ap-northeast-1");
        let sao = GeoPoint::new(-23.55, -46.63);
        assert_eq!(assign_server(&sao, 1).region, "sa-east-1");
    }

    #[test]
    fn assignment_stable_per_broadcast() {
        let p = GeoPoint::new(48.86, 2.35);
        assert_eq!(assign_server(&p, 42), assign_server(&p, 42));
    }

    #[test]
    fn assignment_spreads_within_region() {
        let p = GeoPoint::new(48.86, 2.35);
        let distinct: std::collections::HashSet<u32> =
            (0..100).map(|id| assign_server(&p, id).index).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn hostnames_and_reverse_dns() {
        let s = IngestServer { region: "eu-central-1", index: 3 };
        assert_eq!(s.hostname(), "vidman-eu-central-1-03.periscope.tv");
        let rdns = s.reverse_dns();
        assert!(rdns.starts_with("ec2-54-"), "{rdns}");
        assert!(rdns.ends_with(".eu-central-1.compute.amazonaws.com"), "{rdns}");
    }

    #[test]
    fn server_location_resolves() {
        let s = IngestServer { region: "ap-northeast-1", index: 0 };
        let loc = s.location();
        assert!((loc.lat - 35.68).abs() < 0.1);
    }

    #[test]
    fn distinct_servers_across_fleet() {
        // Collect server identities from broadcasts all over the world; the
        // whole 87-server fleet should be reachable.
        let mut seen = std::collections::HashSet::new();
        for lat in [-35, -10, 0, 20, 40, 55] {
            for lon in [-120, -70, 0, 30, 80, 140, 151] {
                for id in 0..20u64 {
                    let s = assign_server(&GeoPoint::new(lat as f64, lon as f64), id);
                    seen.insert(s.hostname());
                }
            }
        }
        assert!(seen.len() > 40, "seen {} servers", seen.len());
    }
}
