#![warn(missing_docs)]

//! The Periscope platform backend, as the paper reverse-engineered it.
//!
//! §3 of the paper maps the service's anatomy; each piece is a module here:
//!
//! * [`api`] — the private JSON API (`mapGeoBroadcastFeed`, `getBroadcasts`,
//!   `playbackMeta`, Table 1), POSTed to `/api/v2/<apiRequest>`;
//! * [`directory`] — broadcast discovery with the two properties the
//!   crawler had to fight: zoom-dependent map visibility ("more broadcasts
//!   become visible as the user zooms in") and per-user rate limiting
//!   ("too frequent requests will be answered with HTTP 429");
//! * [`ingest`] — the RTMP server fleet on EC2 (87 distinct servers across
//!   9 regions, chosen near the broadcaster);
//! * [`cdn`] — the Fastly-like CDN with two observed POPs (Europe and San
//!   Francisco) serving all HLS traffic, chosen near the viewer;
//! * [`select`] — the RTMP→HLS fallback decision ("HLS seems to be used
//!   only when a broadcast is very popular ... somewhere around 100
//!   viewers");
//! * [`segmenter`] — the transcode/repackage pipeline producing 3–6 s
//!   MPEG-TS segments (3.6 s in 60% of cases) and live playlists;
//! * [`replay`] — ended broadcasts kept as VOD playlists ("Broadcasts can
//!   also be made available for replay", §3);
//! * [`chat`] — the WebSocket chat room with profile-picture side traffic
//!   from S3, the cause of the paper's chat-on traffic explosion (§5.1);
//! * [`service`] — the facade tying it all together behind an HTTP
//!   request/response interface.

pub mod api;
pub mod cdn;
pub mod chat;
pub mod directory;
pub mod ingest;
pub mod replay;
pub mod segmenter;
pub mod select;
pub mod service;

pub use service::{PeriscopeService, ServiceConfig};
