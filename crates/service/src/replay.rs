//! Replay (VOD) service.
//!
//! §3: "Broadcasts can also be made available for replay." §4 uses the
//! replay flag to show most zero-viewer broadcasts vanish unwatched, and
//! §5.3 measures replay playback power ("Video on (not live)") finding it
//! indistinguishable from live. Replays are served as ended HLS media
//! playlists (`EXT-X-ENDLIST`) over the same CDN; the media is the
//! broadcast's recording, regenerated deterministically from the broadcast
//! seed.

use crate::segmenter::{Segment, Segmenter, SegmenterConfig};
use pscp_media::audio::AudioEncoder;
use pscp_media::content::ContentProcess;
use pscp_media::encoder::{Encoder, EncoderConfig};
use pscp_proto::hls::{MediaPlaylist, SegmentEntry};
use pscp_simnet::{RngFactory, SimDuration, SimTime};
use pscp_workload::broadcast::Broadcast;

/// A materialized replay: an ended playlist plus its segments.
#[derive(Debug)]
pub struct ReplayVod {
    /// The replayed broadcast id.
    pub broadcast_id: pscp_workload::broadcast::BroadcastId,
    /// All segments, in sequence order.
    pub segments: Vec<Segment>,
    /// Total media duration materialized, seconds.
    pub duration_s: f64,
}

impl ReplayVod {
    /// Materializes up to `max_media_s` seconds of a broadcast's recording.
    ///
    /// Returns `None` for broadcasts without a replay (not flagged, or
    /// private — private replays are invisible outside the invite list and
    /// out of the measurement's reach).
    pub fn build(broadcast: &Broadcast, max_media_s: f64, rngs: &RngFactory) -> Option<ReplayVod> {
        if !broadcast.replay_available || broadcast.private {
            return None;
        }
        let mut rng = rngs.child("replay").stream_n("vod", broadcast.id.0);
        let content = ContentProcess::new(broadcast.content, &mut rng);
        let enc_cfg = EncoderConfig {
            fps: broadcast.device.fps(),
            gop: broadcast.device.gop(),
            target_bitrate_bps: broadcast.target_bitrate_bps,
            ..Default::default()
        };
        let fps = enc_cfg.fps;
        let mut encoder = Encoder::new(enc_cfg, content);
        let mut audio = AudioEncoder::new(broadcast.audio);
        // Replays are packaged offline: no live packaging delay.
        let mut segmenter = Segmenter::new(SegmenterConfig {
            packaging_delay: SimDuration::ZERO,
            ..Default::default()
        });
        let media_s = broadcast.duration.as_secs_f64().min(max_media_s);
        let frames = (media_s * fps) as u64;
        let mut next_audio_pts = 0.0;
        for i in 0..frames {
            let t = SimTime::from_micros((i as f64 / fps * 1e6) as u64);
            if let Some(frame) = encoder.next_frame(t.as_secs_f64(), &mut rng) {
                segmenter.push_frame(&frame, t);
            }
            while next_audio_pts <= i as f64 * 1000.0 / fps {
                let af = audio.next_frame(&mut rng);
                segmenter.push_audio(af.pts_ms, vec![0xAA; af.size]);
                next_audio_pts += pscp_media::audio::frame_duration_ms();
            }
        }
        segmenter.finish(SimTime::from_secs_f64_approx(media_s));
        let segments: Vec<Segment> = segmenter.segments().to_vec();
        let duration_s = segments.iter().map(|s| s.duration_s).sum();
        Some(ReplayVod { broadcast_id: broadcast.id, segments, duration_s })
    }

    /// The complete VOD playlist.
    pub fn playlist(&self) -> MediaPlaylist {
        let mut pl = MediaPlaylist::new(6);
        for seg in &self.segments {
            pl.push_segment(
                SegmentEntry { duration_s: seg.duration_s, uri: seg.uri() },
                usize::MAX,
            );
        }
        pl.ended = true;
        pl
    }

    /// Looks up a segment body by URI.
    pub fn segment_by_uri(&self, uri: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.uri() == uri)
    }
}

/// Extension helper: SimTime from fractional seconds (approximate, µs grid).
trait FromSecsApprox {
    fn from_secs_f64_approx(s: f64) -> SimTime;
}
impl FromSecsApprox for SimTime {
    fn from_secs_f64_approx(s: f64) -> SimTime {
        SimTime::from_micros((s.max(0.0) * 1e6) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::GeoPoint;
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn broadcast(replay: bool, private: bool) -> Broadcast {
        Broadcast {
            id: BroadcastId(44),
            location: GeoPoint::new(40.71, -74.01),
            city: "New York",
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(120),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 50.0,
            replay_available: replay,
            private,
            location_public: true,
            viewer_seed: 3,
            target_bitrate_bps: 300_000.0,
        }
    }

    #[test]
    fn unflagged_or_private_has_no_replay() {
        let rngs = RngFactory::new(1);
        assert!(ReplayVod::build(&broadcast(false, false), 60.0, &rngs).is_none());
        assert!(ReplayVod::build(&broadcast(true, true), 60.0, &rngs).is_none());
    }

    #[test]
    fn replay_materializes_requested_span() {
        let rngs = RngFactory::new(2);
        let vod = ReplayVod::build(&broadcast(true, false), 60.0, &rngs).unwrap();
        assert!((vod.duration_s - 60.0).abs() < 5.0, "duration={}", vod.duration_s);
        assert!(vod.segments.len() >= 14, "segments={}", vod.segments.len());
    }

    #[test]
    fn short_broadcast_materializes_fully() {
        let rngs = RngFactory::new(3);
        let mut b = broadcast(true, false);
        b.duration = SimDuration::from_secs(20);
        let vod = ReplayVod::build(&b, 300.0, &rngs).unwrap();
        assert!((vod.duration_s - 20.0).abs() < 4.0, "duration={}", vod.duration_s);
    }

    #[test]
    fn playlist_is_ended_and_parses() {
        let rngs = RngFactory::new(4);
        let vod = ReplayVod::build(&broadcast(true, false), 30.0, &rngs).unwrap();
        let pl = vod.playlist();
        assert!(pl.ended);
        assert_eq!(pl.segments.len(), vod.segments.len());
        let text = pl.render();
        let parsed = pscp_proto::hls::MediaPlaylist::parse(&text).unwrap();
        assert!(parsed.ended);
        // Each advertised URI resolves to a demuxable segment.
        for entry in &parsed.segments {
            let seg = vod.segment_by_uri(&entry.uri).unwrap();
            assert!(!pscp_media::ts::demux_segment(&seg.bytes).unwrap().is_empty());
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let rngs = RngFactory::new(5);
        let a = ReplayVod::build(&broadcast(true, false), 30.0, &rngs).unwrap();
        let b = ReplayVod::build(&broadcast(true, false), 30.0, &rngs).unwrap();
        assert_eq!(a.segments.len(), b.segments.len());
        for (x, y) in a.segments.iter().zip(&b.segments) {
            assert_eq!(x.bytes, y.bytes);
        }
    }
}
