//! The HLS packaging pipeline: GOP-aligned MPEG-TS segments + live playlist.
//!
//! §5.1 explains the latency cost this module models: "HLS delivery
//! requires the data to be packaged in complete segments, possibly while
//! transcoding it to multiple qualities, and the client application needs
//! to separately request for each video segment, which all adds up to the
//! latency." §5.2 gives the observable shape: "The most common segment
//! duration with HLS is 3.6 s (60% of the cases), and it ranges between 3
//! and 6 s." At 30 fps with 36-frame GOPs, three GOPs are exactly 3.6 s —
//! segments cut on I-frame boundaries reproduce the distribution naturally.

use pscp_media::bitstream::FrameKind;
use pscp_media::encoder::EncodedFrame;
use pscp_media::ts::{TsMuxer, TsUnit};
use pscp_proto::hls::{MediaPlaylist, SegmentEntry};
use pscp_simnet::{SimDuration, SimTime};

/// A finished segment ready for CDN delivery.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Media sequence number.
    pub seq: u64,
    /// Complete MPEG-TS bytes.
    pub bytes: Vec<u8>,
    /// Media duration in seconds.
    pub duration_s: f64,
    /// Instant the segment became fetchable from the CDN (last frame's
    /// arrival + packaging delay).
    pub available_at: SimTime,
}

impl Segment {
    /// Segment URI in playlists.
    pub fn uri(&self) -> String {
        format!("seg_{}.ts", self.seq)
    }
}

/// Segmenter configuration.
#[derive(Debug, Clone)]
pub struct SegmenterConfig {
    /// Minimum media duration before a cut (cuts land on the next I frame,
    /// so a 30 fps stream with 36-frame GOPs yields the modal 3.6 s).
    pub min_segment_s: f64,
    /// Transcode/package/CDN-upload delay applied after the last frame.
    pub packaging_delay: SimDuration,
    /// Playlist window (segments advertised).
    pub playlist_window: usize,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        SegmenterConfig {
            min_segment_s: 3.0,
            packaging_delay: SimDuration::from_millis(800),
            playlist_window: 6,
        }
    }
}

/// Streaming segmenter: feed frames as they reach the ingest server, pop
/// finished segments.
#[derive(Debug)]
pub struct Segmenter {
    config: SegmenterConfig,
    muxer: TsMuxer,
    playlist: MediaPlaylist,
    pending_units: Vec<TsUnit>,
    pending_first_pts: Option<u32>,
    next_seq: u64,
    finished: Vec<Segment>,
    /// Running estimate of frame duration, for the tail frame's share.
    last_pts_delta_ms: f64,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new(config: SegmenterConfig) -> Self {
        assert!(config.min_segment_s > 0.0);
        Segmenter {
            config,
            muxer: TsMuxer::new(),
            playlist: MediaPlaylist::new(6),
            pending_units: Vec::new(),
            pending_first_pts: None,
            next_seq: 0,
            finished: Vec::new(),
            last_pts_delta_ms: 33.3,
        }
    }

    /// Feeds one video frame arriving at the packager at `arrival`.
    ///
    /// A segment is cut when an I frame arrives after at least
    /// `min_segment_s` of media — so segments start on I frames (HLS
    /// requires independently decodable segments) regardless of the GOP
    /// pattern, including intra-only streams where *every* frame is an I.
    pub fn push_frame(&mut self, frame: &EncodedFrame, arrival: SimTime) {
        let pending_ms =
            self.pending_first_pts.map(|first| frame.pts_ms.saturating_sub(first)).unwrap_or(0);
        if frame.kind == FrameKind::I && pending_ms as f64 >= self.config.min_segment_s * 1000.0 {
            self.cut(arrival);
        }
        if let Some(first) = self.pending_first_pts {
            if frame.pts_ms > first {
                let n = self.pending_units.len().max(1);
                self.last_pts_delta_ms = (frame.pts_ms - first) as f64 / n as f64;
            }
        } else {
            self.pending_first_pts = Some(frame.pts_ms);
        }
        self.pending_units.push(TsUnit::Video { pts_ms: frame.pts_ms, data: frame.bytes.clone() });
    }

    /// Feeds an audio frame.
    pub fn push_audio(&mut self, pts_ms: u32, data: Vec<u8>) {
        self.pending_units.push(TsUnit::Audio { pts_ms, data });
    }

    /// Flushes the in-progress segment (end of broadcast).
    pub fn finish(&mut self, now: SimTime) {
        if !self.pending_units.is_empty() {
            self.cut(now);
        }
        self.playlist.ended = true;
    }

    fn cut(&mut self, arrival: SimTime) {
        let units = std::mem::take(&mut self.pending_units);
        self.pending_first_pts = None;
        if units.is_empty() {
            return;
        }
        let pts: Vec<u32> = units
            .iter()
            .filter(|u| matches!(u, TsUnit::Video { .. }))
            .map(TsUnit::pts_ms)
            .collect();
        let n_video = pts.len().max(1);
        let span_ms = match (pts.iter().min(), pts.iter().max()) {
            (Some(&lo), Some(&hi)) => (hi - lo) as f64,
            _ => 0.0,
        };
        // PTS span misses the final frame's display time; add one frame
        // duration estimated from the span itself.
        let tail_ms =
            if n_video >= 2 { span_ms / (n_video - 1) as f64 } else { self.last_pts_delta_ms };
        let duration_s = (span_ms + tail_ms) / 1000.0;
        let bytes = self.muxer.mux_segment(&units);
        let seq = self.next_seq;
        self.next_seq += 1;
        let available_at = arrival + self.config.packaging_delay;
        let segment = Segment { seq, bytes, duration_s, available_at };
        self.playlist.push_segment(
            SegmentEntry { duration_s, uri: segment.uri() },
            self.config.playlist_window,
        );
        self.finished.push(segment);
    }

    /// Segments finished so far.
    pub fn segments(&self) -> &[Segment] {
        &self.finished
    }

    /// Playlist as visible at `now` — only advertising segments already
    /// available on the CDN.
    pub fn playlist_at(&self, now: SimTime) -> MediaPlaylist {
        let mut pl = MediaPlaylist::new(self.playlist.target_duration_s);
        pl.ended = self.playlist.ended;
        for seg in &self.finished {
            if seg.available_at <= now {
                pl.push_segment(
                    SegmentEntry { duration_s: seg.duration_s, uri: seg.uri() },
                    self.config.playlist_window,
                );
            }
        }
        // Fix up the sequence base: entries slid out of the window shift it.
        let available = self.finished.iter().filter(|s| s.available_at <= now).count();
        pl.media_sequence = available.saturating_sub(self.config.playlist_window) as u64;
        pl
    }

    /// Fetches a segment body by URI, if available at `now`.
    pub fn segment_by_uri(&self, uri: &str, now: SimTime) -> Option<&Segment> {
        self.finished.iter().find(|s| s.uri() == uri && s.available_at <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_media::content::{ContentClass, ContentProcess};
    use pscp_media::encoder::{Encoder, EncoderConfig};
    use pscp_simnet::RngFactory;

    fn feed_seconds(seg: &mut Segmenter, secs: usize, seed: u64) {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("segtest");
        let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
        let cfg = EncoderConfig { frame_drop_prob: 0.0, ..Default::default() };
        let mut enc = Encoder::new(cfg, content);
        for i in 0..secs * 30 {
            let t = SimTime::from_micros((i as u64 * 1_000_000) / 30);
            if let Some(frame) = enc.next_frame(t.as_secs_f64(), &mut rng) {
                seg.push_frame(&frame, t);
            }
        }
    }

    #[test]
    fn segments_are_modal_3_6s() {
        let mut seg = Segmenter::new(SegmenterConfig::default());
        feed_seconds(&mut seg, 30, 1);
        assert!(seg.segments().len() >= 7, "n={}", seg.segments().len());
        for s in seg.segments() {
            assert!((s.duration_s - 3.6).abs() < 0.2, "duration={}", s.duration_s);
        }
    }

    #[test]
    fn segments_decode_as_valid_ts() {
        let mut seg = Segmenter::new(SegmenterConfig::default());
        feed_seconds(&mut seg, 10, 2);
        for s in seg.segments() {
            let frames = pscp_media::ts::segment_video_frames(&s.bytes).unwrap();
            assert!(!frames.is_empty());
            // Segments start on an I frame.
            assert_eq!(frames[0].kind, pscp_media::bitstream::FrameKind::I);
        }
    }

    #[test]
    fn availability_includes_packaging_delay() {
        let mut seg = Segmenter::new(SegmenterConfig::default());
        feed_seconds(&mut seg, 10, 3);
        let first = &seg.segments()[0];
        // First segment's last frame arrives ~3.6 s in; +0.8 s packaging.
        let t = first.available_at.as_secs_f64();
        assert!((4.0..5.2).contains(&t), "available_at={t}");
        // Not fetchable before availability.
        assert!(seg.segment_by_uri(&first.uri(), SimTime::from_secs(3)).is_none());
        assert!(seg.segment_by_uri(&first.uri(), first.available_at).is_some());
    }

    #[test]
    fn playlist_respects_availability_and_window() {
        let mut seg = Segmenter::new(SegmenterConfig { playlist_window: 3, ..Default::default() });
        feed_seconds(&mut seg, 60, 4);
        let early = seg.playlist_at(SimTime::from_secs(9));
        assert!(early.segments.len() <= 2, "early={}", early.segments.len());
        let late = seg.playlist_at(SimTime::from_secs(60));
        assert_eq!(late.segments.len(), 3);
        assert!(late.media_sequence > 0);
        // Playlist text parses.
        let parsed = pscp_proto::hls::MediaPlaylist::parse(&late.render()).unwrap();
        assert_eq!(parsed.segments.len(), 3);
    }

    #[test]
    fn finish_flushes_and_ends() {
        let mut seg = Segmenter::new(SegmenterConfig::default());
        feed_seconds(&mut seg, 5, 5);
        let before = seg.segments().len();
        seg.finish(SimTime::from_secs(5));
        assert!(seg.segments().len() > before);
        assert!(seg.playlist_at(SimTime::from_secs(60)).ended);
    }

    #[test]
    fn audio_interleaved() {
        let mut seg = Segmenter::new(SegmenterConfig::default());
        let f = RngFactory::new(6);
        let mut rng = f.stream("segtest-audio");
        let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
        let cfg = EncoderConfig { frame_drop_prob: 0.0, ..Default::default() };
        let mut enc = Encoder::new(cfg, content);
        for i in 0..300 {
            let t = SimTime::from_micros((i as u64 * 1_000_000) / 30);
            if let Some(frame) = enc.next_frame(t.as_secs_f64(), &mut rng) {
                seg.push_frame(&frame, t);
            }
            if i % 2 == 0 {
                seg.push_audio(i * 33, vec![0xAA; 93]);
            }
        }
        seg.finish(SimTime::from_secs(10));
        let s = &seg.segments()[0];
        let units = pscp_media::ts::demux_segment(&s.bytes).unwrap();
        assert!(units.iter().any(|u| matches!(u, TsUnit::Audio { .. })));
        assert!(units.iter().any(|u| matches!(u, TsUnit::Video { .. })));
    }
}
