//! Delivery-protocol selection: RTMP by default, HLS for popular broadcasts.
//!
//! §5: "HLS seems to be used only when a broadcast is very popular. A
//! comparison of the average number of viewers seen in an RTMP and HLS
//! session suggests that the boundary number of viewers beyond which HLS is
//! used is somewhere around 100 viewers." And §5.1's summary: "HLS appears
//! to be a fallback solution to the RTMP stream" — RTMP pushes with minimal
//! latency; HLS scales through the CDN.

use pscp_simnet::SimTime;
use pscp_workload::broadcast::Broadcast;

/// The delivery protocols: the paper's two (§3) plus the SRT-style
/// unreliable ingest this reproduction adds for the transport chaos study
/// (DESIGN.md §12). The selection policy never chooses SRT on its own — a
/// session opts in explicitly — so the paper-faithful pipeline is
/// untouched unless an experiment forces the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Real Time Messaging Protocol over port 80, pushed from EC2 ingest.
    Rtmp,
    /// HTTP Live Streaming via the Fastly CDN.
    Hls,
    /// SRT-flavoured datagram ingest with NAK/ARQ loss recovery.
    Srt,
}

impl Protocol {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Rtmp => "RTMP",
            Protocol::Hls => "HLS",
            Protocol::Srt => "SRT",
        }
    }
}

/// Protocol selection policy.
#[derive(Debug, Clone)]
pub struct SelectionPolicy {
    /// Viewer count beyond which new viewers are served HLS.
    pub hls_viewer_threshold: u32,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        SelectionPolicy { hls_viewer_threshold: 100 }
    }
}

impl SelectionPolicy {
    /// Chooses the protocol for a viewer joining `broadcast` at `now`.
    pub fn choose(&self, broadcast: &Broadcast, now: SimTime) -> Protocol {
        if broadcast.viewers_at(now) > self.hls_viewer_threshold {
            Protocol::Hls
        } else {
            Protocol::Rtmp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::{GeoPoint, SimDuration};
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn broadcast(avg_viewers: f64) -> Broadcast {
        Broadcast {
            id: BroadcastId(1),
            location: GeoPoint::new(0.0, 0.0),
            city: "x",
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(600),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers,
            replay_available: false,
            private: false,
            location_public: true,
            viewer_seed: 9,
            target_bitrate_bps: 300_000.0,
        }
    }

    #[test]
    fn small_broadcast_gets_rtmp() {
        let policy = SelectionPolicy::default();
        let b = broadcast(5.0);
        assert_eq!(policy.choose(&b, SimTime::from_secs(300)), Protocol::Rtmp);
    }

    #[test]
    fn popular_broadcast_gets_hls() {
        let policy = SelectionPolicy::default();
        let b = broadcast(5000.0);
        assert_eq!(policy.choose(&b, SimTime::from_secs(300)), Protocol::Hls);
    }

    #[test]
    fn threshold_is_configurable() {
        let policy = SelectionPolicy { hls_viewer_threshold: 1 };
        let b = broadcast(30.0);
        assert_eq!(policy.choose(&b, SimTime::from_secs(300)), Protocol::Hls);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Rtmp.name(), "RTMP");
        assert_eq!(Protocol::Hls.name(), "HLS");
    }
}
