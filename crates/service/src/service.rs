//! The service facade: HTTP in, JSON out, with rate limiting — what the
//! phone (and the mitmproxy between) actually talks to.

use crate::api::{broadcast_description, ApiRequest};
use crate::cdn::{self, CdnPop};
use crate::directory::{Directory, RateLimiter, VisibilityConfig};
use crate::ingest::{assign_server, IngestServer};
use crate::select::{Protocol, SelectionPolicy};
use pscp_proto::http::{Request, Response};
use pscp_proto::json::Value;
use pscp_simnet::fault::{FaultConfig, FaultRng};
use pscp_simnet::{GeoPoint, SimTime};
use pscp_workload::broadcast::BroadcastId;
use pscp_workload::population::Population;

/// Service-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Map visibility model.
    pub visibility: VisibilityConfig,
    /// Protocol selection policy.
    pub selection: SelectionPolicy,
    /// Record per-request events/metrics into the service trace (DESIGN.md
    /// §7). Off by default; the simulation is identical either way.
    pub trace: bool,
    /// Fault injection (DESIGN.md §8): only `api_429_rate`/`api_5xx_rate`
    /// apply on the service side. Default all-off, in which case no fault
    /// variate is ever drawn and responses are byte-identical to a
    /// fault-free build.
    pub faults: FaultConfig,
}

/// A stored playbackMeta upload (what the paper's mitmproxy script dumped
/// per viewing session).
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackMetaRecord {
    /// Reporting user.
    pub user: String,
    /// Watched broadcast.
    pub broadcast_id: BroadcastId,
    /// Stall count.
    pub n_stalls: u32,
    /// Mean stall duration (RTMP only).
    pub avg_stall_time_s: Option<f64>,
    /// Playback latency (RTMP only).
    pub playback_latency_s: Option<f64>,
    /// Upload instant.
    pub at: SimTime,
}

/// Stream endpoints returned by `accessVideo`.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoAccess {
    /// Chosen protocol.
    pub protocol: Protocol,
    /// RTMP ingest server (RTMP only).
    pub rtmp_server: Option<IngestServer>,
    /// CDN POP (HLS only).
    pub cdn_pop: Option<CdnPop>,
}

impl VideoAccess {
    fn to_json(&self) -> Value {
        let mut fields = vec![("protocol", Value::str(self.protocol.name()))];
        if let Some(s) = &self.rtmp_server {
            fields.push(("rtmp_url", Value::str(format!("rtmp://{}:80/live", s.hostname()))));
        }
        if let Some(pop) = self.cdn_pop {
            fields
                .push(("hls_url", Value::str(format!("http://{}/playlist.m3u8", pop.hostname()))));
        }
        Value::object(fields)
    }
}

/// The Periscope backend.
#[derive(Debug)]
pub struct PeriscopeService {
    /// The broadcast world this service fronts.
    pub population: Population,
    directory: Directory,
    limiter: RateLimiter,
    config: ServiceConfig,
    /// All playbackMeta uploads received.
    pub playback_meta: Vec<PlaybackMetaRecord>,
    trace: pscp_obs::Trace,
    /// Stream for injected API errors. Stateful is fine here: `handle_http`
    /// takes `&mut self`, so all API traffic is serialized already.
    fault_rng: FaultRng,
}

impl PeriscopeService {
    /// Creates the service over a population.
    pub fn new(population: Population, config: ServiceConfig) -> Self {
        let trace = pscp_obs::Trace::new(config.trace);
        let fault_rng = FaultRng::from_label(config.faults.seed, "service/http");
        PeriscopeService {
            population,
            directory: Directory::new(config.visibility.clone()),
            limiter: RateLimiter::periscope_default(),
            config,
            playback_meta: Vec::new(),
            trace,
            fault_rng,
        }
    }

    /// Drains the service-side trace (per-verb counters, 429 events) so a
    /// crawl or lab can absorb it; the service keeps recording afterwards.
    pub fn take_trace(&mut self) -> pscp_obs::Trace {
        self.trace.take()
    }

    /// Handles one HTTP API request from `user` at `now`. `viewer_loc` is
    /// the requester's location (in reality inferred from the client IP),
    /// used for CDN POP choice.
    pub fn handle_http(
        &mut self,
        user: &str,
        req: &Request,
        now: SimTime,
        viewer_loc: &GeoPoint,
    ) -> Response {
        if !self.limiter.allow(user, now) {
            // §4: "too frequent requests will be answered with HTTP 429".
            self.trace.count("service", "rate_limited", 1);
            if self.trace.is_enabled() {
                self.trace.event(
                    now.as_micros(),
                    "service",
                    "service.rate_limited",
                    vec![("user", pscp_obs::Field::S(user.to_string()))],
                );
            }
            return Response::too_many_requests();
        }
        let f = &self.config.faults;
        if f.api_429_rate > 0.0 || f.api_5xx_rate > 0.0 {
            // One draw per request decides between injected 429, injected
            // 5xx, and normal handling; with both rates zero the branch is
            // never entered and no variate is consumed.
            let r = self.fault_rng.next_f64();
            if r < f.api_429_rate {
                self.trace.count("fault", "injected_429", 1);
                return Response::too_many_requests();
            }
            if r < f.api_429_rate + f.api_5xx_rate {
                self.trace.count("fault", "injected_5xx", 1);
                return Response::server_error();
            }
        }
        let api = match ApiRequest::from_http(req) {
            Ok(api) => api,
            Err(e) => {
                self.trace.count("service", "bad_requests", 1);
                return Response {
                    status: 400,
                    headers: Vec::new(),
                    body: e.to_string().into_bytes(),
                };
            }
        };
        let verb = match &api {
            ApiRequest::MapGeoBroadcastFeed { .. } => "api.mapGeoBroadcastFeed",
            ApiRequest::GetBroadcasts { .. } => "api.getBroadcasts",
            ApiRequest::PlaybackMeta { .. } => "api.playbackMeta",
            ApiRequest::AccessVideo { .. } => "api.accessVideo",
        };
        self.trace.count("service", verb, 1);
        // Request handling takes no sim time in this model, so its span is
        // an instant marker on the service's own trace (absorbed by
        // whichever crawl drives it).
        self.trace.span(now.as_micros(), now.as_micros(), "service", "service.request", None);
        match api {
            ApiRequest::MapGeoBroadcastFeed { rect, include_replay } => {
                // include_replay=false (the crawler's setting) restricts to
                // live broadcasts, which map_query already guarantees; the
                // flag exists to mirror the wire protocol.
                let _ = include_replay;
                let found = self.directory.map_query(&self.population, &rect, now);
                let list: Vec<Value> = found
                    .iter()
                    .map(|b| {
                        Value::object([
                            ("id", Value::str(b.id.as_string())),
                            ("lat", Value::Number(b.location.lat)),
                            ("lng", Value::Number(b.location.lon)),
                        ])
                    })
                    .collect();
                Response::ok_json(Value::object([("broadcasts", Value::Array(list))]).to_json())
            }
            ApiRequest::GetBroadcasts { ids } => {
                let list: Vec<Value> = ids
                    .iter()
                    .filter_map(|id| self.population.by_id(*id))
                    .map(|b| broadcast_description(b, now))
                    .collect();
                Response::ok_json(Value::object([("broadcasts", Value::Array(list))]).to_json())
            }
            ApiRequest::PlaybackMeta {
                broadcast_id,
                n_stalls,
                avg_stall_time_s,
                playback_latency_s,
            } => {
                self.playback_meta.push(PlaybackMetaRecord {
                    user: user.to_string(),
                    broadcast_id,
                    n_stalls,
                    avg_stall_time_s,
                    playback_latency_s,
                    at: now,
                });
                // Table 1: playbackMeta returns "nothing".
                Response::ok_json("{}")
            }
            ApiRequest::AccessVideo { broadcast_id } => {
                match self.access_video(broadcast_id, viewer_loc, now) {
                    Some(access) => Response::ok_json(access.to_json().to_json()),
                    None => Response::not_found(),
                }
            }
        }
    }

    /// Resolves stream endpoints for a broadcast: protocol by popularity,
    /// RTMP server near the broadcaster, CDN POP near the viewer.
    pub fn access_video(
        &self,
        id: BroadcastId,
        viewer_loc: &GeoPoint,
        now: SimTime,
    ) -> Option<VideoAccess> {
        let b = self.population.by_id(id)?;
        if !b.is_live_at(now) {
            return None;
        }
        let protocol = self.config.selection.choose(b, now);
        Some(match protocol {
            Protocol::Rtmp => VideoAccess {
                protocol,
                rtmp_server: Some(assign_server(&b.location, b.id.0)),
                cdn_pop: None,
            },
            Protocol::Hls => VideoAccess {
                protocol,
                rtmp_server: None,
                cdn_pop: Some(cdn::pop_for_session(
                    viewer_loc,
                    b.id.0 ^ (now.as_micros() / 60_000_000),
                )),
            },
            // The selection policy never chooses SRT (it is opt-in per
            // session); an SRT gateway rides the same ingest host.
            Protocol::Srt => VideoAccess {
                protocol,
                rtmp_server: Some(assign_server(&b.location, b.id.0)),
                cdn_pop: None,
            },
        })
    }

    /// The selection policy in force (for experiment introspection).
    pub fn selection_policy(&self) -> &SelectionPolicy {
        &self.config.selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_proto::json::parse;
    use pscp_simnet::{GeoRect, RngFactory, SimDuration};
    use pscp_workload::population::PopulationConfig;

    fn service() -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::medium(), &RngFactory::new(21));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    fn helsinki() -> GeoPoint {
        GeoPoint::new(60.17, 24.94)
    }

    #[test]
    fn map_feed_returns_ids() {
        let mut svc = service();
        let req = ApiRequest::MapGeoBroadcastFeed { rect: GeoRect::WORLD, include_replay: false }
            .to_http("u1");
        let resp = svc.handle_http("u1", &req, SimTime::from_secs(3600), &helsinki());
        assert_eq!(resp.status, 200);
        let v = parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let list = v.get("broadcasts").unwrap().as_array().unwrap();
        assert!(!list.is_empty());
        assert!(list[0].get("id").is_some());
    }

    #[test]
    fn get_broadcasts_returns_descriptions() {
        let mut svc = service();
        let t = SimTime::from_secs(3600);
        let id = svc.population.live_at(t)[0].id;
        let req = ApiRequest::GetBroadcasts { ids: vec![id] }.to_http("u1");
        let resp = svc.handle_http("u1", &req, t, &helsinki());
        let v = parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let list = v.get("broadcasts").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 1);
        let desc = crate::api::BroadcastDescription::from_json(&list[0]).unwrap();
        assert_eq!(desc.id, id);
        assert!(desc.live);
    }

    #[test]
    fn unknown_ids_silently_skipped() {
        let mut svc = service();
        let req = ApiRequest::GetBroadcasts { ids: vec![BroadcastId(0xdead_beef)] }.to_http("u1");
        let resp = svc.handle_http("u1", &req, SimTime::from_secs(10), &helsinki());
        let v = parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(v.get("broadcasts").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn rate_limit_fires_429() {
        let mut svc = service();
        let t = SimTime::from_secs(100);
        let req = ApiRequest::GetBroadcasts { ids: vec![] }.to_http("u1");
        let mut saw_429 = false;
        for _ in 0..20 {
            let resp = svc.handle_http("u1", &req, t, &helsinki());
            if resp.status == 429 {
                saw_429 = true;
                break;
            }
        }
        assert!(saw_429);
        // A different user is unaffected.
        let resp = svc.handle_http("u2", &req, t, &helsinki());
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn injected_api_errors_fire_and_reproduce() {
        let mk = || {
            let pop = Population::generate(PopulationConfig::medium(), &RngFactory::new(21));
            let config = ServiceConfig {
                faults: FaultConfig {
                    seed: 77,
                    api_429_rate: 0.2,
                    api_5xx_rate: 0.2,
                    ..Default::default()
                },
                ..Default::default()
            };
            PeriscopeService::new(pop, config)
        };
        let (mut a, mut b) = (mk(), mk());
        let req = ApiRequest::GetBroadcasts { ids: vec![] }.to_http("u");
        let run = |svc: &mut PeriscopeService| -> Vec<u16> {
            (0..40)
                .map(|i| {
                    // One request per user per second stays under the limiter.
                    let t = SimTime::from_secs(i);
                    svc.handle_http(&format!("u{i}"), &req, t, &helsinki()).status
                })
                .collect()
        };
        let (sa, sb) = (run(&mut a), run(&mut b));
        assert_eq!(sa, sb, "same fault seed, same injected statuses");
        assert!(sa.contains(&429) && sa.contains(&503) && sa.contains(&200), "statuses={sa:?}");
    }

    #[test]
    fn playback_meta_stored() {
        let mut svc = service();
        let req = ApiRequest::PlaybackMeta {
            broadcast_id: BroadcastId(7),
            n_stalls: 3,
            avg_stall_time_s: Some(4.0),
            playback_latency_s: Some(2.4),
        }
        .to_http("phone-1");
        let resp = svc.handle_http("phone-1", &req, SimTime::from_secs(60), &helsinki());
        assert_eq!(resp.status, 200);
        assert_eq!(svc.playback_meta.len(), 1);
        assert_eq!(svc.playback_meta[0].n_stalls, 3);
        assert_eq!(svc.playback_meta[0].user, "phone-1");
    }

    #[test]
    fn access_video_small_broadcast_rtmp_near_broadcaster() {
        let svc = service();
        let t = SimTime::from_secs(3600);
        let small = svc
            .population
            .live_at(t)
            .into_iter()
            .find(|b| b.avg_viewers > 0.0 && b.avg_viewers < 20.0 && b.city == "Istanbul")
            .expect("an unpopular Istanbul broadcast exists");
        let access = svc.access_video(small.id, &helsinki(), t).unwrap();
        assert_eq!(access.protocol, Protocol::Rtmp);
        let server = access.rtmp_server.unwrap();
        // Broadcaster in Istanbul → an EU ingest region, not the viewer's.
        assert!(server.region.starts_with("eu-"), "region={}", server.region);
    }

    #[test]
    fn access_video_popular_broadcast_uses_hls_cdn() {
        let svc = service();
        let t = SimTime::from_secs(3600);
        let popular = svc
            .population
            .live_at(t)
            .into_iter()
            .find(|b| b.viewers_at(t) > 150)
            .expect("a popular broadcast exists");
        let access = svc.access_video(popular.id, &helsinki(), t).unwrap();
        assert_eq!(access.protocol, Protocol::Hls);
        assert!(access.cdn_pop.is_some());
        assert!(access.rtmp_server.is_none());
        // POP-choice geography is covered distributionally in pscp-service
        // cdn tests (pop_for_session), since any single session may be
        // anycast-diverted.
    }

    #[test]
    fn access_video_dead_broadcast_404() {
        let mut svc = service();
        let ended = svc.population.broadcasts[0].clone();
        let after = ended.end() + SimDuration::from_secs(10);
        assert!(svc.access_video(ended.id, &helsinki(), after).is_none());
        let req = ApiRequest::AccessVideo { broadcast_id: ended.id }.to_http("u");
        let resp = svc.handle_http("u", &req, after, &helsinki());
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn malformed_request_is_400() {
        let mut svc = service();
        let req = Request::post_json("/api/v2/mapGeoBroadcastFeed", "not json");
        let resp = svc.handle_http("u", &req, SimTime::from_secs(1), &helsinki());
        assert_eq!(resp.status, 400);
    }
}
