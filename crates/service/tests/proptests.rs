//! Property-based tests for service-side invariants.

use proptest::prelude::*;
use pscp_service::chat::{ChatConfig, ChatRoom};
use pscp_service::directory::{RateLimiter, VisibilityConfig};
use pscp_service::ingest::assign_server;
use pscp_simnet::{GeoPoint, GeoRect, SimDuration, SimTime};

proptest! {
    /// Visibility caps grow (weakly) as the queried area shrinks.
    #[test]
    fn visibility_cap_monotone_in_zoom(
        south in -80.0f64..60.0,
        west in -170.0f64..150.0,
        dlat in 0.5f64..30.0,
        dlon in 0.5f64..30.0,
    ) {
        let cfg = VisibilityConfig::default();
        let rect = GeoRect::new(south, west, south + dlat, west + dlon);
        let [q, ..] = rect.quadrants();
        prop_assert!(cfg.cap_for(&q) >= cfg.cap_for(&rect));
        prop_assert!(cfg.cap_for(&rect) >= cfg.cap_for(&GeoRect::WORLD));
        prop_assert!(cfg.cap_for(&q) <= cfg.max_cap);
    }

    /// The rate limiter never admits more than burst + rate×time requests,
    /// for any request pattern.
    #[test]
    fn rate_limiter_admission_bound(
        gaps_ms in prop::collection::vec(0u64..3000, 1..120),
        burst in 1u32..10,
        interval_ms in 100u64..2000,
    ) {
        let mut rl = RateLimiter::new(burst, SimDuration::from_millis(interval_ms));
        let mut t = SimTime::from_secs(1);
        let mut admitted = 0u32;
        for gap in &gaps_ms {
            t += SimDuration::from_millis(*gap);
            if rl.allow("u", t) {
                admitted += 1;
            }
        }
        let elapsed_ms: u64 = gaps_ms.iter().sum();
        let bound = burst as f64 + elapsed_ms as f64 / interval_ms as f64;
        prop_assert!(
            (admitted as f64) <= bound + 1.0,
            "admitted={admitted} bound={bound}"
        );
    }

    /// Ingest assignment always picks the nearest region.
    #[test]
    fn ingest_nearest_region(
        lat in -60.0f64..70.0,
        lon in -179.0f64..179.0,
        id in any::<u64>(),
    ) {
        let p = GeoPoint::new(lat, lon);
        let chosen = assign_server(&p, id);
        let chosen_d = p.distance_km(&chosen.location());
        for r in pscp_service::ingest::REGIONS {
            let d = p.distance_km(&GeoPoint::new(r.lat, r.lon));
            prop_assert!(chosen_d <= d + 1e-6, "{} at {chosen_d} beaten by {} at {d}", chosen.region, r.name);
        }
        // Index stays within the region's fleet.
        let region = pscp_service::ingest::REGIONS
            .iter()
            .find(|r| r.name == chosen.region)
            .unwrap();
        prop_assert!(chosen.index < region.servers);
    }

    /// Chat rooms: message counts respect the fullness cap for any viewer
    /// count, and all messages stay in-window.
    #[test]
    fn chat_room_caps_and_windows(
        viewers in 0u32..20_000,
        from_s in 0u64..1000,
        span_s in 1u64..300,
        seed in any::<u64>(),
    ) {
        let mut room = ChatRoom::new(ChatConfig::default());
        let mut rng = pscp_simnet::RngFactory::new(seed).stream("chat-prop");
        let from = SimTime::from_secs(from_s);
        let to = from + SimDuration::from_secs(span_s);
        let msgs = room.messages_between(from, to, viewers, &mut rng);
        for m in &msgs {
            prop_assert!(m.at >= from && m.at < to);
        }
        // Expected rate bound: capped chatters × rate × span, with slack.
        let cap = ChatConfig::default().full_at.min(viewers) as f64
            * ChatConfig::default().per_user_msg_rate
            * span_s as f64;
        prop_assert!((msgs.len() as f64) < cap * 3.0 + 20.0, "n={} cap={cap}", msgs.len());
    }
}
