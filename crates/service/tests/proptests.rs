//! Property-based tests for service-side invariants, on the in-tree
//! `pscp-check` harness.

use pscp_check::{check, ensure, Gen};
use pscp_service::chat::{ChatConfig, ChatRoom};
use pscp_service::directory::{RateLimiter, VisibilityConfig};
use pscp_service::ingest::assign_server;
use pscp_simnet::{GeoPoint, GeoRect, SimDuration, SimTime};

/// Visibility caps grow (weakly) as the queried area shrinks.
#[test]
fn visibility_cap_monotone_in_zoom() {
    check(
        "visibility_cap_monotone_in_zoom",
        |g: &mut Gen| {
            (g.f64(-80.0..60.0), g.f64(-170.0..150.0), g.f64(0.5..30.0), g.f64(0.5..30.0))
        },
        |(south, west, dlat, dlon)| {
            let cfg = VisibilityConfig::default();
            let rect = GeoRect::new(*south, *west, south + dlat, west + dlon);
            let [q, ..] = rect.quadrants();
            ensure!(cfg.cap_for(&q) >= cfg.cap_for(&rect), "zoom-in lowered the cap");
            ensure!(cfg.cap_for(&rect) >= cfg.cap_for(&GeoRect::WORLD), "world cap too high");
            ensure!(cfg.cap_for(&q) <= cfg.max_cap, "cap above max_cap");
            Ok(())
        },
    );
}

/// The rate limiter never admits more than burst + rate×time requests,
/// for any request pattern.
#[test]
fn rate_limiter_admission_bound() {
    check(
        "rate_limiter_admission_bound",
        |g: &mut Gen| (g.vec(1..120, |g| g.u64(0..3000)), g.u32(1..10), g.u64(100..2000)),
        |(gaps_ms, burst, interval_ms)| {
            let mut rl = RateLimiter::new(*burst, SimDuration::from_millis(*interval_ms));
            let mut t = SimTime::from_secs(1);
            let mut admitted = 0u32;
            for gap in gaps_ms {
                t += SimDuration::from_millis(*gap);
                if rl.allow("u", t) {
                    admitted += 1;
                }
            }
            let elapsed_ms: u64 = gaps_ms.iter().sum();
            let bound = *burst as f64 + elapsed_ms as f64 / *interval_ms as f64;
            ensure!((admitted as f64) <= bound + 1.0, "admitted={admitted} bound={bound}");
            Ok(())
        },
    );
}

/// Ingest assignment always picks the nearest region.
#[test]
fn ingest_nearest_region() {
    check(
        "ingest_nearest_region",
        |g: &mut Gen| (g.f64(-60.0..70.0), g.f64(-179.0..179.0), g.u64(..)),
        |(lat, lon, id)| {
            let p = GeoPoint::new(*lat, *lon);
            let chosen = assign_server(&p, *id);
            let chosen_d = p.distance_km(&chosen.location());
            for r in pscp_service::ingest::REGIONS {
                let d = p.distance_km(&GeoPoint::new(r.lat, r.lon));
                ensure!(
                    chosen_d <= d + 1e-6,
                    "{} at {chosen_d} beaten by {} at {d}",
                    chosen.region,
                    r.name
                );
            }
            // Index stays within the region's fleet.
            let region = pscp_service::ingest::REGIONS
                .iter()
                .find(|r| r.name == chosen.region)
                .ok_or_else(|| format!("unknown region {}", chosen.region))?;
            ensure!(chosen.index < region.servers, "server index outside fleet");
            Ok(())
        },
    );
}

/// Chat rooms: message counts respect the fullness cap for any viewer
/// count, and all messages stay in-window.
#[test]
fn chat_room_caps_and_windows() {
    check(
        "chat_room_caps_and_windows",
        |g: &mut Gen| (g.u32(0..20_000), g.u64(0..1000), g.u64(1..300), g.u64(..)),
        |(viewers, from_s, span_s, seed)| {
            let mut room = ChatRoom::new(ChatConfig::default());
            let mut rng = pscp_simnet::RngFactory::new(*seed).stream("chat-prop");
            let from = SimTime::from_secs(*from_s);
            let to = from + SimDuration::from_secs(*span_s);
            let msgs = room.messages_between(from, to, *viewers, &mut rng);
            for m in &msgs {
                ensure!(m.at >= from && m.at < to, "message outside window");
            }
            // Expected rate bound: capped chatters × rate × span, with slack.
            let cap = ChatConfig::default().full_at.min(*viewers) as f64
                * ChatConfig::default().per_user_msg_rate
                * *span_s as f64;
            ensure!((msgs.len() as f64) < cap * 3.0 + 20.0, "n={} cap={cap}", msgs.len());
            Ok(())
        },
    );
}
