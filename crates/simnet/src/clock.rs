//! Host wall clocks with imperfect NTP synchronisation.
//!
//! The paper measures delivery latency by subtracting an NTP timestamp
//! embedded by the broadcasting device from the capture time at the viewer
//! (§5.1), and notes: "Even if our packet capturing machine was NTP
//! synchronized, we sometimes observed small negative time differences
//! indicating that the synchronization was imperfect." [`WallClock`] models
//! exactly that: each host's wall time is simulation time plus a fixed
//! offset, a slow drift, and per-reading jitter.

use crate::rng::Rng;
use crate::time::SimTime;

/// A host's wall clock.
#[derive(Debug, Clone)]
pub struct WallClock {
    /// Constant offset from true (simulation) time, seconds. Positive means
    /// the host clock runs ahead.
    pub offset_s: f64,
    /// Frequency error in parts per million.
    pub drift_ppm: f64,
    /// Standard deviation of per-reading jitter, seconds (scheduling noise,
    /// timestamping granularity).
    pub jitter_s: f64,
}

impl WallClock {
    /// A perfect clock (the simulator's own reference).
    pub fn perfect() -> Self {
        WallClock { offset_s: 0.0, drift_ppm: 0.0, jitter_s: 0.0 }
    }

    /// A clock freshly disciplined by NTP against a nearby pool: offsets of
    /// a few milliseconds, drift under 50 ppm.
    pub fn ntp_synced<R: Rng + ?Sized>(rng: &mut R) -> Self {
        WallClock {
            offset_s: crate::dist::normal(rng, 0.0, 0.004),
            drift_ppm: crate::dist::normal(rng, 0.0, 15.0),
            jitter_s: 0.0005,
        }
    }

    /// An undisciplined phone clock: offsets up to seconds.
    pub fn loose<R: Rng + ?Sized>(rng: &mut R) -> Self {
        WallClock {
            offset_s: crate::dist::normal(rng, 0.0, 1.5),
            drift_ppm: crate::dist::normal(rng, 0.0, 40.0),
            jitter_s: 0.002,
        }
    }

    /// Reads the wall clock at simulation instant `at`, in seconds since the
    /// simulation epoch as this host believes it.
    pub fn read<R: Rng + ?Sized>(&self, at: SimTime, rng: &mut R) -> f64 {
        let t = at.as_secs_f64();
        let jitter =
            if self.jitter_s > 0.0 { crate::dist::normal(rng, 0.0, self.jitter_s) } else { 0.0 };
        t + self.offset_s + t * self.drift_ppm * 1e-6 + jitter
    }

    /// Noise-free read (for tests and for hosts treated as reference).
    pub fn read_exact(&self, at: SimTime) -> f64 {
        let t = at.as_secs_f64();
        t + self.offset_s + t * self.drift_ppm * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn perfect_clock_reads_sim_time() {
        let c = WallClock::perfect();
        assert_eq!(c.read_exact(SimTime::from_secs(100)), 100.0);
    }

    #[test]
    fn offset_shifts_reading() {
        let c = WallClock { offset_s: 0.5, drift_ppm: 0.0, jitter_s: 0.0 };
        assert_eq!(c.read_exact(SimTime::from_secs(10)), 10.5);
    }

    #[test]
    fn drift_accumulates() {
        let c = WallClock { offset_s: 0.0, drift_ppm: 100.0, jitter_s: 0.0 };
        // 100 ppm over 10_000 s = 1 s.
        assert!((c.read_exact(SimTime::from_secs(10_000)) - 10_001.0).abs() < 1e-9);
    }

    #[test]
    fn ntp_synced_is_close() {
        let f = RngFactory::new(5);
        let mut rng = f.stream("clock");
        for _ in 0..100 {
            let c = WallClock::ntp_synced(&mut rng);
            assert!(c.offset_s.abs() < 0.05, "offset={}", c.offset_s);
        }
    }

    #[test]
    fn imperfect_sync_can_go_negative() {
        // Two NTP-synced clocks: their relative offset occasionally makes a
        // later event appear earlier — the paper's "small negative time
        // differences".
        let f = RngFactory::new(17);
        let mut rng = f.stream("clock-pair");
        let mut negatives = 0;
        for _ in 0..200 {
            let sender = WallClock::ntp_synced(&mut rng);
            let receiver = WallClock::ntp_synced(&mut rng);
            let sent = sender.read_exact(SimTime::from_millis(1000));
            // Received 1 ms later in true time.
            let received = receiver.read_exact(SimTime::from_millis(1001));
            if received - sent < 0.0 {
                negatives += 1;
            }
        }
        assert!(negatives > 0, "expected some negative apparent latencies");
        assert!(negatives < 200, "not all should be negative");
    }

    #[test]
    fn jitter_varies_readings() {
        let f = RngFactory::new(23);
        let mut rng = f.stream("jitter");
        let c = WallClock { offset_s: 0.0, drift_ppm: 0.0, jitter_s: 0.01 };
        let a = c.read(SimTime::from_secs(1), &mut rng);
        let b = c.read(SimTime::from_secs(1), &mut rng);
        assert_ne!(a, b);
    }
}
