//! Unreliable datagram transport over a [`Link`].
//!
//! The reliable transports below RTMP and HLS turn loss into *delay*
//! ([`fault::RETX_DELAY`] per lost packet) because TCP retransmits under
//! the media. A datagram link has no such floor: a lost packet is a hole
//! the protocol above must handle (or not), which is exactly what the SRT
//! ingest path needs — loss recovery becomes *protocol behaviour* instead
//! of a fixed penalty.
//!
//! [`DatagramLink`] composes the existing [`Link`] (serialization, FIFO
//! queueing, propagation, bounded buffer with tail drop) with the existing
//! per-packet fault layer ([`LinkFaults`]): the same Gilbert–Elliott chain
//! and spike stream, consumed at the same fixed three variates per packet,
//! so a scaled loss config loses a superset of packets on either transport
//! and the chaos sweep stays a paired comparison. With faults disabled no
//! fault state exists and no variate is drawn — the link is byte-identical
//! to a bare [`Link`].

use crate::fault::{FaultConfig, LinkFaults};
use crate::link::{Delivery, Link};
use crate::time::{SimDuration, SimTime};

/// Outcome of offering a datagram to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgramDelivery {
    /// Datagram arrives at the far end at this time.
    At(SimTime),
    /// Lost on the wire (Gilbert–Elliott): it simply never arrives.
    LostWire,
    /// Dropped at the sender: the link queue was full.
    LostQueue,
}

impl DgramDelivery {
    /// Arrival time, if delivered.
    pub fn time(self) -> Option<SimTime> {
        match self {
            DgramDelivery::At(t) => Some(t),
            _ => None,
        }
    }
}

/// An unreliable unidirectional datagram link: no delivery guarantee, no
/// ordering repair, no retransmission — those live in the protocol above.
#[derive(Debug, Clone)]
pub struct DatagramLink {
    link: Link,
    faults: Option<LinkFaults>,
    /// Datagrams lost on the wire so far.
    pub lost_wire: u64,
    /// Datagrams dropped by the full queue so far.
    pub lost_queue: u64,
}

impl DatagramLink {
    /// Creates a fault-free datagram link (rate in bits/second, one-way
    /// propagation, queue bound in bytes).
    pub fn new(rate_bps: f64, propagation: SimDuration, queue_capacity: usize) -> Self {
        DatagramLink {
            link: Link::new(rate_bps, propagation, queue_capacity),
            faults: None,
            lost_wire: 0,
            lost_queue: 0,
        }
    }

    /// Unbounded-queue convenience constructor.
    pub fn unbounded(rate_bps: f64, propagation: SimDuration) -> Self {
        DatagramLink {
            link: Link::unbounded(rate_bps, propagation),
            faults: None,
            lost_wire: 0,
            lost_queue: 0,
        }
    }

    /// Attaches the per-packet fault layer when `cfg` has any link fault
    /// active; inert (and draw-free) otherwise.
    pub fn with_faults(mut self, cfg: &FaultConfig, unit_seed: u64, label: &str) -> Self {
        if LinkFaults::active(cfg) {
            self.faults = Some(LinkFaults::new(cfg, unit_seed, label));
        }
        self
    }

    /// Underlying link (for rate/propagation queries).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Offers a *reliable-transport* segment to the same serializer.
    ///
    /// The viewer's app traffic (bootstrap, chat, pictures) rides TCP
    /// connections that share the access bottleneck with the datagram
    /// media — one transmitter, one FIFO, one queue bound. A reliable
    /// segment is never wire-lost here and consumes no fault variate: the
    /// reliable path's loss-as-delay discipline
    /// ([`LinkFaults::packet_extra`]) is applied by the caller, keeping the
    /// datagram Gilbert–Elliott chain's per-packet draw count fixed.
    pub fn send_reliable(&mut self, now: SimTime, bytes: usize) -> Delivery {
        self.link.enqueue(now, bytes)
    }

    /// Fault counters, when the fault layer is attached: `(lost, spiked)`.
    pub fn fault_counts(&self) -> Option<(u64, u64)> {
        self.faults.as_ref().map(|f| (f.lost, f.spiked))
    }

    /// Offers a datagram of `bytes` at `now`.
    ///
    /// The queue/serialization bookkeeping runs even for wire-lost packets
    /// — they occupied the transmitter before vanishing downstream — so
    /// loss does not free up bandwidth, matching how a real lossy path
    /// behaves between the sender and the loss point.
    pub fn send(&mut self, now: SimTime, bytes: usize) -> DgramDelivery {
        match self.link.enqueue(now, bytes) {
            Delivery::Dropped => {
                self.lost_queue += 1;
                DgramDelivery::LostQueue
            }
            Delivery::At(t) => match self.faults.as_mut() {
                None => DgramDelivery::At(t),
                Some(lf) => {
                    let (lost, extra) = lf.datagram_fate();
                    if lost {
                        self.lost_wire += 1;
                        DgramDelivery::LostWire
                    } else {
                        DgramDelivery::At(t + extra)
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{LossConfig, SpikeConfig};

    fn lossy_cfg(scale: f64) -> FaultConfig {
        FaultConfig {
            loss: LossConfig {
                p_loss_good: 0.05,
                p_loss_bad: 0.5,
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.3,
            }
            .scaled(scale),
            ..Default::default()
        }
    }

    #[test]
    fn faultless_matches_bare_link() {
        let mut dg = DatagramLink::unbounded(8e6, SimDuration::from_millis(10));
        let mut raw = Link::unbounded(8e6, SimDuration::from_millis(10));
        for i in 0..100 {
            let now = SimTime::from_millis(i * 3);
            assert_eq!(dg.send(now, 1000).time(), raw.enqueue(now, 1000).time());
        }
        assert_eq!(dg.lost_wire, 0);
        assert!(dg.fault_counts().is_none(), "no fault state without faults");
    }

    #[test]
    fn reliable_and_datagram_traffic_share_the_serializer() {
        // A reliable segment occupies the transmitter: the datagram sent
        // right after it serializes behind it, exactly as if both came
        // from one Link.
        let mut dg = DatagramLink::unbounded(8e6, SimDuration::ZERO);
        let mut raw = Link::unbounded(8e6, SimDuration::ZERO);
        let t0 = SimTime::from_millis(1);
        assert_eq!(dg.send_reliable(t0, 10_000).time(), raw.enqueue(t0, 10_000).time());
        assert_eq!(dg.send(t0, 1000).time(), raw.enqueue(t0, 1000).time());
    }

    #[test]
    fn inert_fault_config_attaches_nothing() {
        let dg = DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(
            &FaultConfig::default(),
            7,
            "srt/link",
        );
        assert!(dg.faults.is_none());
    }

    #[test]
    fn losses_are_holes_not_delays() {
        let mut dg = DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(
            &lossy_cfg(1.0),
            7,
            "srt/link",
        );
        let mut lost = 0;
        let mut delivered = 0;
        for i in 0..2000u64 {
            match dg.send(SimTime::from_millis(i), 500) {
                DgramDelivery::LostWire => lost += 1,
                DgramDelivery::At(_) => delivered += 1,
                DgramDelivery::LostQueue => panic!("unbounded queue dropped"),
            }
        }
        assert!(lost > 20, "lost={lost}");
        assert!(delivered > 1000, "delivered={delivered}");
        assert_eq!(dg.lost_wire, lost);
        assert_eq!(dg.fault_counts().unwrap().0, lost);
    }

    #[test]
    fn loss_schedule_is_reproducible_and_seed_keyed() {
        let fates = |seed: u64| {
            let mut dg = DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(
                &lossy_cfg(1.0),
                seed,
                "srt/link",
            );
            (0..500u64).map(|i| dg.send(SimTime::from_millis(i), 500)).collect::<Vec<_>>()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8));
    }

    #[test]
    fn scaled_loss_is_a_superset_on_datagrams() {
        let mut lo = DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(
            &lossy_cfg(1.0),
            7,
            "srt/link",
        );
        let mut hi = DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(
            &lossy_cfg(3.0),
            7,
            "srt/link",
        );
        for i in 0..5000u64 {
            let a = lo.send(SimTime::from_millis(i), 500);
            let b = hi.send(SimTime::from_millis(i), 500);
            if a == DgramDelivery::LostWire {
                assert_eq!(b, DgramDelivery::LostWire, "packet {i} lost at 1x but not 3x");
            }
        }
        assert!(hi.lost_wire > lo.lost_wire);
    }

    #[test]
    fn spikes_delay_without_losing() {
        let cfg = FaultConfig {
            spike: SpikeConfig { p_spike: 1.0, spike_ms: 150 },
            ..Default::default()
        };
        let mut dg =
            DatagramLink::unbounded(8e6, SimDuration::ZERO).with_faults(&cfg, 7, "srt/link");
        match dg.send(SimTime::ZERO, 1000) {
            DgramDelivery::At(t) => assert!(t >= SimTime::from_millis(150), "t={t}"),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn full_queue_drops_at_sender() {
        let mut dg = DatagramLink::new(8e6, SimDuration::ZERO, 1500);
        assert!(matches!(dg.send(SimTime::ZERO, 1000), DgramDelivery::At(_)));
        assert_eq!(dg.send(SimTime::ZERO, 1000), DgramDelivery::LostQueue);
        assert_eq!(dg.lost_queue, 1);
    }
}
