//! Random distributions used across the reproduction.
//!
//! The in-tree [`Rng`] core ships only uniform sampling; the distributions
//! the workload model needs (normal, lognormal, exponential, Pareto, Zipf,
//! categorical) are implemented here with standard textbook methods so the
//! whole stack stays dependency-free.

use crate::rng::Rng;

/// Samples a standard normal via Box–Muller (polar form avoided for clarity;
/// the trig form is branch-free and fine at simulation rates).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples N(mean, sd²).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "standard deviation must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Samples a lognormal with the given parameters of the underlying normal
/// (`mu`, `sigma` are in log space; the median is `exp(mu)`).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples Exp(rate) via inverse transform; mean is `1/rate`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a Pareto with scale `xm` and shape `alpha` (heavy tail for small
/// alpha); support is [xm, ∞).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0, "Pareto parameters must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    xm / u.powf(1.0 / alpha)
}

/// Samples an integer in `[1, n]` from a Zipf distribution with exponent `s`
/// using the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and exact.
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: u64, s: f64) -> u64 {
    assert!(n >= 1, "Zipf needs n >= 1");
    assert!(s > 0.0 && (s - 1.0).abs() > 1e-9, "use s != 1 (offset s slightly if needed)");
    // H(x) = (x^(1-s) - 1) / (1 - s) is the antiderivative of x^-s; the
    // algorithm inverts it over [0.5, n+0.5] and rejects against the true
    // point masses k^-s.
    let one_minus_s = 1.0 - s;
    let h = |x: f64| (x.powf(one_minus_s) - 1.0) / one_minus_s;
    let h_inv = |y: f64| (1.0 + one_minus_s * y).powf(1.0 / one_minus_s);
    let h_x1 = h(1.5) - 1.0; // h(1.5) - pmf(1), pmf(1) = 1
    let h_n = h(n as f64 + 0.5);
    // Unconditional-acceptance window width near k = 1.
    let accept_s = 1.0 - h_inv(h(1.5) - 1.0);
    loop {
        let u: f64 = h_x1 + rng.gen::<f64>() * (h_n - h_x1);
        let x = h_inv(u);
        let k = (x + 0.5).floor().clamp(1.0, n as f64);
        if k - x <= accept_s || u >= h(k + 0.5) - k.powf(-s) {
            return k as u64;
        }
    }
}

/// Samples an index from explicit (unnormalized, non-negative) weights.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical needs at least one weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0 && total.is_finite(), "weights must sum to a positive finite value");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0, "weights must be non-negative");
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Samples uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(hi >= lo, "need hi >= lo");
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Returns true with probability `p` (clamped to \[0,1\]).
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> crate::rng::CounterRng {
        RngFactory::new(1234).stream("dist-tests")
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_000).map(|_| lognormal(&mut r, 1.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1f64.exp()).abs() < 0.15, "median={median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_support_and_tail() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // P(X > 4) = (2/4)^1.5 ≈ 0.3536
        let frac = xs.iter().filter(|&&x| x > 4.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng();
        let n = 1000;
        let samples: Vec<u64> = (0..30_000).map(|_| zipf(&mut r, n, 1.2)).collect();
        assert!(samples.iter().all(|&k| (1..=n).contains(&k)));
        let p1 = samples.iter().filter(|&&k| k == 1).count() as f64 / samples.len() as f64;
        let p2 = samples.iter().filter(|&&k| k == 2).count() as f64 / samples.len() as f64;
        assert!(p1 > p2, "p1={p1} p2={p2}");
        // Ratio p1/p2 should be near 2^1.2 ≈ 2.3.
        assert!((p1 / p2 - 2.3).abs() < 0.5, "ratio={}", p1 / p2);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut r, &w)] += 1;
        }
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.6).abs() < 0.02, "f2={f2}");
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let mut r = rng();
        for _ in 0..1000 {
            assert_ne!(categorical(&mut r, &[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn coin_extremes() {
        let mut r = rng();
        assert!(!coin(&mut r, 0.0));
        assert!(coin(&mut r, 1.0));
        // p outside [0,1] clamps rather than panicking.
        assert!(coin(&mut r, 2.0));
    }

    #[test]
    fn coin_probability() {
        let mut r = rng();
        let hits = (0..20_000).filter(|_| coin(&mut r, 0.3)).count() as f64 / 20_000.0;
        assert!((hits - 0.3).abs() < 0.02, "hits={hits}");
    }
}
