//! Time-ordered event queue.
//!
//! The queue is generic over the event payload so each layer of the stack can
//! define its own event enum (the smoltcp-style alternative to trait-object
//! dispatch). Ties in time are broken FIFO by an insertion sequence number,
//! which is what makes simulations reproducible: two events scheduled for the
//! same instant always fire in scheduling order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap max-heap pops the earliest entry.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Scheduling in the past is a logic error and panics: silently
    /// reordering time hides bugs in higher layers.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "scheduling at {at} before now {}", self.now);
        self.heap.push(Entry { at, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Runs the queue to completion, calling `handler(now, event, queue)` for
    /// each event. The handler may schedule further events. Stops when the
    /// queue drains or `horizon` is passed (events after it stay queued).
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while let Some(at) = self.peek_time() {
            if at > horizon {
                break;
            }
            let (now, ev) = self.pop().expect("peeked entry exists");
            // The handler gets a scratch queue view by re-borrowing self via
            // a temporary swap: events it schedules land in the same heap.
            handler(now, ev, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(10), 10);
        let mut seen = Vec::new();
        q.run_until(SimTime::from_secs(5), |_, e, _| seen.push(e));
        assert_eq!(seen, vec![1]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u32);
        let mut count = 0;
        q.run_until(SimTime::from_secs(100), |now, e, q| {
            count += 1;
            if e < 5 {
                q.schedule(now + SimDuration::from_secs(1), e + 1);
            }
        });
        assert_eq!(count, 6);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
