//! Deterministic fault injection (DESIGN.md §8).
//!
//! The paper measured a production service whose tails — stall ratio, join
//! time, delivery latency — are shaped by what happens when the network and
//! backend *misbehave*. This module supplies that misbehaviour as data, not
//! chance: every fault is drawn from a self-contained [`FaultRng`] stream
//! keyed on `(fault seed, unit label)`, so a fault schedule is a pure
//! function of the lab seed, reproduces bit-for-bit, and is invariant under
//! `PSCP_THREADS` (no fault stream is ever shared between work items).
//!
//! Fault classes:
//!
//! * **packet loss** — a Gilbert–Elliott two-state chain per link
//!   ([`GilbertElliott`]), surfaced as retransmission delay;
//! * **latency spikes** — per-packet extra delay ([`SpikeConfig`]);
//! * **outage windows** — scheduled server/CDN-POP downtime computed as a
//!   pure function of `(seed, unit, minute slot)` ([`OutageConfig`]), so
//!   every session observing the same endpoint sees the same outage;
//! * **API errors** — probabilistic HTTP 429/5xx injection (rates live
//!   here; the draw happens in `PeriscopeService` and the client);
//! * **mid-stream RTMP disconnects** and **chat drops** — Bernoulli windows
//!   over the session timeline ([`drop_windows`]).
//!
//! [`FaultConfig::default`] is all-off and draws nothing: with the layer
//! disabled the simulation takes exactly the legacy control flow, so every
//! dataset, figure and trace byte matches a build without this module.

use crate::time::{SimDuration, SimTime};

/// Extra delivery delay charged per lost packet (an RTO-flavoured
/// retransmission penalty; losses surface as delay, not holes, because the
/// transport below the media is reliable).
pub const RETX_DELAY: SimDuration = SimDuration::from_millis(200);

/// Outage schedules are resolved on this time grid (one sim-minute) —
/// public so the alerting layer can align its ring windows with the fault
/// grid and the incident correlator can enumerate ground-truth slots.
pub const OUTAGE_SLOT_US: u64 = 60_000_000;
/// Upper bound on consecutive outage slots scanned by [`OutageConfig::outage_end`].
const OUTAGE_SCAN_SLOTS: u64 = 240;

/// SplitMix64 mixer (kept local to `fault.rs` even though `rng.rs` has the
/// same core, so fault schedules stay decoupled from media stream layout).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a label into a stream seed (same chunking as `RngFactory`, with a
/// fault-layer-specific tweak so fault streams never alias media streams).
fn mix_label(seed: u64, label: &str) -> u64 {
    let mut state = seed ^ 0x1f83_d9ab_fb41_bd6b;
    for chunk in label.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = splitmix64(state ^ u64::from_le_bytes(word));
    }
    state
}

/// A tiny, dependency-free deterministic RNG (SplitMix64 sequence) for
/// fault draws. Separate from `RngFactory`'s `CounterRng` streams so the
/// fault layer adds no draws to — and can never perturb — the media
/// randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: splitmix64(seed ^ 0x6a09_e667_f3bc_c908) }
    }

    /// Creates the stream for `label` under `seed` (pure: same inputs, same
    /// stream, on any thread).
    pub fn from_label(seed: u64, label: &str) -> Self {
        FaultRng::new(mix_label(seed, label))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit resolution).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw; always consumes exactly one variate, even at `p <= 0`,
    /// so adding or scaling a fault class never shifts later draws.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Gilbert–Elliott packet-loss parameters. All-zero means lossless.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossConfig {
    /// Loss probability in the good state.
    pub p_loss_good: f64,
    /// Loss probability in the bad (bursty) state.
    pub p_loss_bad: f64,
    /// Good → bad transition probability per packet.
    pub p_good_to_bad: f64,
    /// Bad → good transition probability per packet.
    pub p_bad_to_good: f64,
}

impl LossConfig {
    /// Whether any packet can be lost.
    pub fn is_active(&self) -> bool {
        self.p_loss_good > 0.0 || self.p_loss_bad > 0.0
    }

    /// Scales the *loss* probabilities by `k` (clamped to 1), leaving the
    /// state-transition probabilities untouched. Because [`GilbertElliott`]
    /// draws a fixed two variates per packet, the same stream at a larger
    /// `k` loses a superset of packets — the monotonicity the chaos sweep
    /// relies on.
    pub fn scaled(&self, k: f64) -> LossConfig {
        LossConfig {
            p_loss_good: (self.p_loss_good * k).clamp(0.0, 1.0),
            p_loss_bad: (self.p_loss_bad * k).clamp(0.0, 1.0),
            ..*self
        }
    }
}

/// Per-packet latency-spike parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpikeConfig {
    /// Probability a packet is hit by a spike.
    pub p_spike: f64,
    /// Extra delay per spiked packet, milliseconds.
    pub spike_ms: u64,
}

/// Scheduled outage windows for a named unit (an ingest server or CDN POP).
///
/// The schedule is not drawn into state anywhere: membership of each
/// one-minute slot is a pure function of `(seed, unit, slot)`, so every
/// session — on any thread, in any order — agrees on when `vidman-eu-1` was
/// down.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OutageConfig {
    /// Probability that any given minute of a unit's timeline is inside an
    /// outage.
    pub p_minute: f64,
}

impl OutageConfig {
    /// Whether outages can occur at all.
    pub fn is_active(&self) -> bool {
        self.p_minute > 0.0
    }

    fn slot_down(&self, seed: u64, unit: &str, slot: u64) -> bool {
        if self.p_minute <= 0.0 {
            return false;
        }
        let mut rng =
            FaultRng::new(mix_label(seed, unit) ^ splitmix64(slot ^ 0xa54f_f53a_5f1d_36f1));
        rng.chance(self.p_minute)
    }

    /// Whether `unit` is down at `t`.
    pub fn in_outage(&self, seed: u64, unit: &str, t: SimTime) -> bool {
        self.slot_down(seed, unit, t.as_micros() / OUTAGE_SLOT_US)
    }

    /// End of the outage containing `t` (start of the next up slot). The
    /// scan is bounded; a pathological always-down schedule reports an end
    /// [`OUTAGE_SCAN_SLOTS`] minutes out.
    pub fn outage_end(&self, seed: u64, unit: &str, t: SimTime) -> SimTime {
        let mut slot = t.as_micros() / OUTAGE_SLOT_US;
        let limit = slot + OUTAGE_SCAN_SLOTS;
        while slot < limit && self.slot_down(seed, unit, slot) {
            slot += 1;
        }
        SimTime::from_micros(slot * OUTAGE_SLOT_US)
    }
}

/// A Gilbert–Elliott loss chain over one link.
///
/// Exactly two variates are consumed per packet (state transition, then
/// loss) regardless of state or rates, so two runs of the same stream with
/// differently *scaled* loss probabilities walk identical state sequences
/// and compare identical loss draws against different thresholds — loss
/// indicators are monotone in the scale.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    cfg: LossConfig,
    rng: FaultRng,
    bad: bool,
}

impl GilbertElliott {
    /// Creates a chain in the good state.
    pub fn new(cfg: LossConfig, rng: FaultRng) -> Self {
        GilbertElliott { cfg, rng, bad: false }
    }

    /// Advances one packet; returns whether it was lost.
    pub fn next_lost(&mut self) -> bool {
        let u_trans = self.rng.next_f64();
        let u_loss = self.rng.next_f64();
        if self.bad {
            if u_trans < self.cfg.p_bad_to_good {
                self.bad = false;
            }
        } else if u_trans < self.cfg.p_good_to_bad {
            self.bad = true;
        }
        let p = if self.bad { self.cfg.p_loss_bad } else { self.cfg.p_loss_good };
        u_loss < p
    }
}

/// Per-link packet fault state: loss chain + spike draws, with counters.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    ge: GilbertElliott,
    spike: SpikeConfig,
    spike_rng: FaultRng,
    /// Packets lost so far.
    pub lost: u64,
    /// Packets hit by a latency spike so far.
    pub spiked: u64,
}

impl LinkFaults {
    /// Whether `cfg` injects any per-packet link fault.
    pub fn active(cfg: &FaultConfig) -> bool {
        cfg.loss.is_active() || cfg.spike.p_spike > 0.0
    }

    /// Creates the fault state for one link, keyed on the session's unit
    /// seed and a link label (`"rtmp/link"`, `"hls/link"`).
    pub fn new(cfg: &FaultConfig, unit_seed: u64, label: &str) -> Self {
        let base = cfg.seed ^ splitmix64(unit_seed);
        LinkFaults {
            ge: GilbertElliott::new(cfg.loss, FaultRng::from_label(base, &format!("{label}/ge"))),
            spike: cfg.spike,
            spike_rng: FaultRng::from_label(base, &format!("{label}/spike")),
            lost: 0,
            spiked: 0,
        }
    }

    /// Extra delivery delay for the next packet (zero when it sails
    /// through). Consumes a fixed three variates per packet.
    pub fn packet_extra(&mut self) -> SimDuration {
        let lost = self.ge.next_lost();
        let spiked = self.spike_rng.chance(self.spike.p_spike);
        let mut extra = SimDuration::ZERO;
        if lost {
            self.lost += 1;
            extra += RETX_DELAY;
        }
        if spiked {
            self.spiked += 1;
            extra += SimDuration::from_millis(self.spike.spike_ms);
        }
        extra
    }

    /// Fate of the next packet on an *unreliable* link: `(lost, extra)`.
    /// There is no transport below to retransmit, so a loss is a hole, not
    /// a delay; spikes still surface as delay. Consumes exactly the same
    /// three variates as [`LinkFaults::packet_extra`], so the two
    /// disciplines share loss schedules — the same chain at a scaled
    /// [`LossConfig`] loses a superset of packets either way.
    pub fn datagram_fate(&mut self) -> (bool, SimDuration) {
        let lost = self.ge.next_lost();
        let spiked = self.spike_rng.chance(self.spike.p_spike);
        if lost {
            self.lost += 1;
        }
        let mut extra = SimDuration::ZERO;
        if spiked {
            self.spiked += 1;
            extra += SimDuration::from_millis(self.spike.spike_ms);
        }
        (lost, extra)
    }
}

/// Deterministic drop windows over `[from, to)`: each minute-aligned slot
/// is independently hit with probability `per_min`, opening a window of
/// `dur` from the slot start. Used for mid-stream RTMP disconnects and
/// WebSocket chat drops.
pub fn drop_windows(
    seed: u64,
    unit: &str,
    from: SimTime,
    to: SimTime,
    per_min: f64,
    dur: SimDuration,
) -> Vec<(SimTime, SimTime)> {
    let mut out = Vec::new();
    if per_min <= 0.0 || to <= from {
        return out;
    }
    let first = from.as_micros() / OUTAGE_SLOT_US;
    let last = to.as_micros().div_ceil(OUTAGE_SLOT_US);
    for slot in first..last {
        let mut rng =
            FaultRng::new(mix_label(seed, unit) ^ splitmix64(slot ^ 0x510e_527f_ade6_82d1));
        if rng.chance(per_min.min(1.0)) {
            let start = SimTime::from_micros(slot * OUTAGE_SLOT_US).max(from);
            out.push((start, (start + dur).min(to)));
        }
    }
    out
}

/// Whether `t` falls inside any window.
pub fn in_windows(windows: &[(SimTime, SimTime)], t: SimTime) -> bool {
    windows.iter().any(|&(a, b)| t >= a && t < b)
}

/// The full fault-injection configuration. The default is all-off: no
/// stream is created, no variate is drawn, and the simulation is
/// byte-identical to a build without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Seed for every fault stream. Deliberately separate from the lab
    /// seed: the same world can be replayed under different fault
    /// schedules, or the same schedule imposed on different worlds.
    pub seed: u64,
    /// Per-link Gilbert–Elliott packet loss.
    pub loss: LossConfig,
    /// Per-packet latency spikes.
    pub spike: SpikeConfig,
    /// RTMP ingest-server outage windows.
    pub ingest_outage: OutageConfig,
    /// CDN-POP outage windows (HLS).
    pub pop_outage: OutageConfig,
    /// Probability an API request is answered 429 (on top of the organic
    /// rate limiter).
    pub api_429_rate: f64,
    /// Probability an API request is answered 5xx.
    pub api_5xx_rate: f64,
    /// Expected mid-stream RTMP disconnects per minute of session.
    pub rtmp_disconnect_per_min: f64,
    /// Probability an HLS segment fetch errors and must be re-fetched.
    pub segment_error_rate: f64,
    /// Expected WebSocket chat drops per minute of session.
    pub chat_drop_per_min: f64,
}

impl FaultConfig {
    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.loss.is_active()
            || self.spike.p_spike > 0.0
            || self.ingest_outage.is_active()
            || self.pop_outage.is_active()
            || self.api_429_rate > 0.0
            || self.api_5xx_rate > 0.0
            || self.rtmp_disconnect_per_min > 0.0
            || self.segment_error_rate > 0.0
            || self.chat_drop_per_min > 0.0
    }

    /// The chaos-sweep preset: every non-loss class at a fixed base rate,
    /// loss scaled by `loss_scale`. Holding the other classes (and the
    /// seed) constant across sweep points means the only thing that varies
    /// along the sweep is loss intensity — which, with the fixed-draw
    /// Gilbert–Elliott discipline, makes stall ratio monotone in
    /// `loss_scale` session by session.
    pub fn chaos(seed: u64, loss_scale: f64) -> FaultConfig {
        FaultConfig {
            seed,
            loss: LossConfig {
                p_loss_good: 0.01,
                p_loss_bad: 0.25,
                p_good_to_bad: 0.015,
                p_bad_to_good: 0.25,
            }
            .scaled(loss_scale),
            spike: SpikeConfig { p_spike: 0.002, spike_ms: 150 },
            ingest_outage: OutageConfig { p_minute: 0.01 },
            pop_outage: OutageConfig { p_minute: 0.01 },
            api_429_rate: 0.02,
            api_5xx_rate: 0.02,
            rtmp_disconnect_per_min: 0.04,
            segment_error_rate: 0.02,
            chat_drop_per_min: 0.05,
        }
    }
}

/// One ground-truth fault window: a maximal run of down minute-slots for
/// one unit, as exported by [`FaultConfig::ground_truth_log`]. Because
/// outage schedules are pure functions of `(seed, unit, slot)`, this is
/// the *labeled truth* the incident correlator scores detectors against —
/// re-derivable from the fault seed alone, no instrumentation involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruthWindow {
    /// Fault class: `"pop_outage"` or `"ingest_outage"`.
    pub class: &'static str,
    /// The affected unit (POP or ingest hostname).
    pub unit: String,
    /// Window start, sim-microseconds (slot-aligned).
    pub start_us: u64,
    /// Window end, sim-microseconds (exclusive, slot-aligned).
    pub end_us: u64,
}

impl FaultConfig {
    /// Exports every outage window scheduled over `[0, horizon)` for the
    /// given ingest and POP units, sorted by `(start, class, unit)`. A
    /// pure function of `(self.seed, units, horizon)` — the same config
    /// always exports the same log, which is what lets the incident layer
    /// compute exact recall/precision for its detectors.
    pub fn ground_truth_log(
        &self,
        ingest_units: &[&str],
        pop_units: &[&str],
        horizon: SimTime,
    ) -> Vec<GroundTruthWindow> {
        let mut out = Vec::new();
        let slots = horizon.as_micros().div_ceil(OUTAGE_SLOT_US);
        let mut scan = |cfg: &OutageConfig, class: &'static str, units: &[&str]| {
            if !cfg.is_active() {
                return;
            }
            for &unit in units {
                let mut open: Option<u64> = None;
                for slot in 0..=slots {
                    let down = slot < slots && cfg.slot_down(self.seed, unit, slot);
                    match (down, open) {
                        (true, None) => open = Some(slot),
                        (false, Some(start)) => {
                            out.push(GroundTruthWindow {
                                class,
                                unit: unit.to_string(),
                                start_us: start * OUTAGE_SLOT_US,
                                end_us: slot * OUTAGE_SLOT_US,
                            });
                            open = None;
                        }
                        _ => {}
                    }
                }
            }
        };
        scan(&self.ingest_outage, "ingest_outage", ingest_units);
        scan(&self.pop_outage, "pop_outage", pop_units);
        out.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then_with(|| a.class.cmp(b.class))
                .then_with(|| a.unit.cmp(&b.unit))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert!(!LinkFaults::active(&cfg));
        assert!(!cfg.ingest_outage.in_outage(7, "vidman-eu-1", SimTime::from_secs(999)));
        assert!(drop_windows(7, "chat", SimTime::ZERO, SimTime::from_secs(600), 0.0, RETX_DELAY)
            .is_empty());
    }

    #[test]
    fn fault_rng_is_deterministic_and_label_separated() {
        let mut a = FaultRng::from_label(5, "x");
        let mut b = FaultRng::from_label(5, "x");
        let mut c = FaultRng::from_label(5, "y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fault_rng_roughly_uniform() {
        let mut rng = FaultRng::new(11);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gilbert_elliott_loss_rate_tracks_config() {
        let cfg = LossConfig {
            p_loss_good: 0.01,
            p_loss_bad: 0.5,
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.2,
        };
        let mut ge = GilbertElliott::new(cfg, FaultRng::new(3));
        let n = 100_000;
        let lost = (0..n).filter(|_| ge.next_lost()).count();
        let rate = lost as f64 / n as f64;
        // Stationary bad-state share is 0.05/(0.05+0.2) = 0.2 →
        // E[loss] ≈ 0.8*0.01 + 0.2*0.5 = 0.108.
        assert!((0.08..0.14).contains(&rate), "rate={rate}");
    }

    #[test]
    fn scaled_loss_is_a_superset() {
        let base = LossConfig {
            p_loss_good: 0.02,
            p_loss_bad: 0.3,
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
        };
        let mut lo = GilbertElliott::new(base, FaultRng::new(9));
        let mut hi = GilbertElliott::new(base.scaled(2.0), FaultRng::new(9));
        for i in 0..50_000 {
            let (l, h) = (lo.next_lost(), hi.next_lost());
            assert!(!l || h, "packet {i} lost at 1x but not 2x");
        }
    }

    #[test]
    fn outage_schedule_is_pure_and_unit_keyed() {
        let cfg = OutageConfig { p_minute: 0.3 };
        let t = SimTime::from_secs(1234);
        assert_eq!(cfg.in_outage(1, "pop-a", t), cfg.in_outage(1, "pop-a", t));
        // Different units disagree somewhere over a long horizon.
        let diverges = (0..500).any(|m| {
            let t = SimTime::from_secs(m * 60);
            cfg.in_outage(1, "pop-a", t) != cfg.in_outage(1, "pop-b", t)
        });
        assert!(diverges);
    }

    #[test]
    fn outage_end_is_after_and_clears_the_outage() {
        let cfg = OutageConfig { p_minute: 0.4 };
        for m in 0..200 {
            let t = SimTime::from_secs(m * 60 + 30);
            if cfg.in_outage(2, "vidman", t) {
                let end = cfg.outage_end(2, "vidman", t);
                assert!(end > t);
                assert!(!cfg.in_outage(2, "vidman", end), "still down at {end}");
                return;
            }
        }
        panic!("no outage found at p_minute=0.4 over 200 minutes");
    }

    #[test]
    fn drop_windows_land_inside_range() {
        let from = SimTime::from_secs(400);
        let to = SimTime::from_secs(460);
        let ws = drop_windows(3, "chat", from, to, 1.0, SimDuration::from_secs(5));
        assert!(!ws.is_empty());
        for &(a, b) in &ws {
            assert!(a >= from && b <= to && a < b, "window {a}..{b}");
        }
        assert!(in_windows(&ws, ws[0].0));
        assert!(!in_windows(&ws, to));
    }

    #[test]
    fn link_faults_charge_retx_delay() {
        let cfg = FaultConfig {
            loss: LossConfig { p_loss_good: 1.0, p_loss_bad: 1.0, ..Default::default() },
            ..Default::default()
        };
        let mut lf = LinkFaults::new(&cfg, 4, "rtmp/link");
        assert_eq!(lf.packet_extra(), RETX_DELAY);
        assert_eq!(lf.lost, 1);
    }

    #[test]
    fn ground_truth_log_matches_the_live_schedule() {
        let cfg = FaultConfig::chaos(2016, 2.0);
        let horizon = SimTime::from_secs(240 * 60);
        let log = cfg.ground_truth_log(&["vidman-eu-1"], &["pop-a", "pop-b"], horizon);
        assert_eq!(log, cfg.ground_truth_log(&["vidman-eu-1"], &["pop-a", "pop-b"], horizon));
        // Every exported window agrees minute-by-minute with in_outage,
        // and every down minute is covered by some window.
        for w in &log {
            let outage = if w.class == "pop_outage" { &cfg.pop_outage } else { &cfg.ingest_outage };
            assert!(w.start_us < w.end_us && w.end_us % OUTAGE_SLOT_US == 0);
            for slot in (w.start_us / OUTAGE_SLOT_US)..(w.end_us / OUTAGE_SLOT_US) {
                let t = SimTime::from_micros(slot * OUTAGE_SLOT_US);
                assert!(outage.in_outage(cfg.seed, &w.unit, t), "{w:?} up at {t}");
            }
        }
        for slot in 0..240u64 {
            let t = SimTime::from_micros(slot * OUTAGE_SLOT_US);
            for pop in ["pop-a", "pop-b"] {
                let down = cfg.pop_outage.in_outage(cfg.seed, pop, t);
                let covered = log.iter().any(|w| {
                    w.class == "pop_outage"
                        && w.unit == pop
                        && w.start_us <= t.as_micros()
                        && t.as_micros() < w.end_us
                });
                assert_eq!(down, covered, "slot {slot} {pop}");
            }
        }
        // All-off config exports nothing.
        assert!(FaultConfig::default().ground_truth_log(&["a"], &["b"], horizon).is_empty());
    }

    #[test]
    fn chaos_preset_scales_only_loss() {
        let a = FaultConfig::chaos(5, 1.0);
        let b = FaultConfig::chaos(5, 2.0);
        assert!(b.loss.p_loss_good > a.loss.p_loss_good);
        assert_eq!(a.loss.p_good_to_bad, b.loss.p_good_to_bad);
        assert_eq!(a.api_429_rate, b.api_429_rate);
        assert_eq!(a.pop_outage, b.pop_outage);
        let zero = FaultConfig::chaos(5, 0.0);
        assert!(!zero.loss.is_active());
        assert!(zero.is_active(), "base classes stay on at scale 0");
    }
}
