//! Geography: points, rectangles (the `mapGeoBroadcastFeed` query shape),
//! great-circle distances, propagation-delay estimation, and timezones.
//!
//! The crawler explores the world by querying rectangular areas and zooming
//! by quadtree subdivision (§4); the service places broadcasts at
//! coordinates and picks ingest servers by proximity (§5). Both sides share
//! this module.

use crate::time::SimDuration;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal propagation speed in fibre, km per millisecond (~2/3 c), plus a
/// routing-inflation factor folded in.
const FIBRE_KM_PER_MS: f64 = 200.0;
const ROUTE_INFLATION: f64 = 1.6;

/// A point on Earth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, [-90, 90].
    pub lat: f64,
    /// Longitude in degrees, [-180, 180].
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude and wrapping longitude into range.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        GeoPoint { lat, lon: lon - 180.0 }
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (la1, lo1) = (self.lat.to_radians(), self.lon.to_radians());
        let (la2, lo2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = la2 - la1;
        let dlon = lo2 - lo1;
        let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way network propagation delay estimate to `other`, including
    /// route inflation; floored at 1 ms for last-mile/serialisation noise.
    pub fn propagation_to(&self, other: &GeoPoint) -> SimDuration {
        let km = self.distance_km(other) * ROUTE_INFLATION;
        let ms = (km / FIBRE_KM_PER_MS).max(1.0);
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// UTC offset in whole hours inferred from longitude (15° per hour).
    /// Real timezones are political; longitude is the right fidelity for the
    /// paper's "local time of day" analysis (Fig 2b).
    pub fn utc_offset_hours(&self) -> i32 {
        (self.lon / 15.0).round() as i32
    }
}

/// An axis-aligned geographic rectangle (no antimeridian wrap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoRect {
    /// Southern edge.
    pub south: f64,
    /// Western edge.
    pub west: f64,
    /// Northern edge.
    pub north: f64,
    /// Eastern edge.
    pub east: f64,
}

impl GeoRect {
    /// The whole world.
    pub const WORLD: GeoRect = GeoRect { south: -90.0, west: -180.0, north: 90.0, east: 180.0 };

    /// Creates a rectangle; panics if the edges are inverted.
    pub fn new(south: f64, west: f64, north: f64, east: f64) -> Self {
        assert!(north >= south, "north must be >= south");
        assert!(east >= west, "east must be >= west");
        GeoRect { south, west, north, east }
    }

    /// Whether `p` lies inside (inclusive south/west, exclusive north/east,
    /// except at the world's edges so nothing falls off the map).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let lat_ok =
            p.lat >= self.south && (p.lat < self.north || (self.north >= 90.0 && p.lat <= 90.0));
        let lon_ok =
            p.lon >= self.west && (p.lon < self.east || (self.east >= 180.0 && p.lon <= 180.0));
        lat_ok && lon_ok
    }

    /// Center point.
    pub fn center(&self) -> GeoPoint {
        GeoPoint { lat: (self.south + self.north) / 2.0, lon: (self.west + self.east) / 2.0 }
    }

    /// Splits into four quadrants (SW, SE, NW, NE) — the deep crawl's zoom
    /// step.
    pub fn quadrants(&self) -> [GeoRect; 4] {
        let c = self.center();
        [
            GeoRect::new(self.south, self.west, c.lat, c.lon),
            GeoRect::new(self.south, c.lon, c.lat, self.east),
            GeoRect::new(c.lat, self.west, self.north, c.lon),
            GeoRect::new(c.lat, c.lon, self.north, self.east),
        ]
    }

    /// Angular "area" in square degrees (a fine zoom-level proxy).
    pub fn deg_area(&self) -> f64 {
        (self.north - self.south) * (self.east - self.west)
    }

    /// The quadtree cell key of `p` at `depth` levels below the world
    /// rectangle: two bits per level, the quadrant index of
    /// [`GeoRect::quadrants`] (SW=0, SE=1, NW=2, NE=3), most significant
    /// level first. Because `contains` is inclusive on south/west edges,
    /// exclusive on interior north/east edges and inclusive on the world's
    /// own rim, the `4^depth` cells of a level partition the world: every
    /// point — poles and antimeridian included — lands in exactly one cell.
    pub fn quad_cell(p: &GeoPoint, depth: u8) -> u16 {
        assert!(depth <= 7, "quad keys carry at most 7 levels in 16 bits");
        let mut rect = GeoRect::WORLD;
        let mut key = 0u16;
        for _ in 0..depth {
            let quads = rect.quadrants();
            let qi = quads
                .iter()
                .position(|q| q.contains(p))
                .expect("quadrants partition their parent rectangle");
            key = (key << 2) | qi as u16;
            rect = quads[qi];
        }
        key
    }

    /// The rectangle of quadtree cell `key` at `depth` (inverse of
    /// [`GeoRect::quad_cell`] up to edge conventions).
    pub fn quad_rect(key: u16, depth: u8) -> GeoRect {
        assert!(depth <= 7, "quad keys carry at most 7 levels in 16 bits");
        let mut rect = GeoRect::WORLD;
        for level in (0..depth).rev() {
            let qi = ((key >> (2 * level)) & 3) as usize;
            rect = rect.quadrants()[qi];
        }
        rect
    }
}

/// Quadtree depth whose cell count equals `shards` (1 → 0, 4 → 1, 16 → 2,
/// 64 → 3); `None` unless the count is a power of four.
pub fn quad_depth_for(shards: usize) -> Option<u8> {
    let mut depth = 0u8;
    let mut cells = 1usize;
    while cells < shards && depth < 7 {
        cells *= 4;
        depth += 1;
    }
    (cells == shards).then_some(depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_helsinki_to_turin() {
        // Helsinki (60.17, 24.94) to Turin (45.07, 7.69): ~2030 km by
        // haversine on the mean-radius sphere.
        let hel = GeoPoint::new(60.17, 24.94);
        let tur = GeoPoint::new(45.07, 7.69);
        let d = hel.distance_km(&tur);
        assert!((d - 2030.0).abs() < 10.0, "d={d}");
    }

    #[test]
    fn distance_zero_to_self() {
        let p = GeoPoint::new(10.0, 20.0);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn distance_antipodal_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn propagation_floor_is_one_ms() {
        let p = GeoPoint::new(1.0, 1.0);
        assert_eq!(p.propagation_to(&p), SimDuration::from_millis(1));
    }

    #[test]
    fn propagation_transatlantic_tens_of_ms() {
        let nyc = GeoPoint::new(40.7, -74.0);
        let lon = GeoPoint::new(51.5, -0.1);
        let d = nyc.propagation_to(&lon).as_millis();
        assert!((20..80).contains(&d), "d={d}ms");
    }

    #[test]
    fn utc_offsets() {
        assert_eq!(GeoPoint::new(60.0, 25.0).utc_offset_hours(), 2); // Finland-ish
        assert_eq!(GeoPoint::new(37.0, -122.0).utc_offset_hours(), -8); // SF
        assert_eq!(GeoPoint::new(0.0, 0.0).utc_offset_hours(), 0);
    }

    #[test]
    fn point_constructor_wraps() {
        let p = GeoPoint::new(95.0, 190.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - (-170.0)).abs() < 1e-9);
    }

    #[test]
    fn rect_contains() {
        let r = GeoRect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(&GeoPoint::new(5.0, 5.0)));
        assert!(r.contains(&GeoPoint::new(0.0, 0.0)));
        assert!(!r.contains(&GeoPoint::new(10.0, 5.0))); // north edge exclusive
        assert!(!r.contains(&GeoPoint::new(-1.0, 5.0)));
    }

    #[test]
    fn world_edges_inclusive() {
        assert!(GeoRect::WORLD.contains(&GeoPoint::new(90.0, 180.0)));
        assert!(GeoRect::WORLD.contains(&GeoPoint::new(-90.0, -180.0)));
    }

    #[test]
    fn quadrants_partition_points() {
        let r = GeoRect::new(0.0, 0.0, 10.0, 10.0);
        let quads = r.quadrants();
        // Every interior point is in exactly one quadrant.
        for lat in [1.0, 4.9, 5.0, 9.9] {
            for lon in [1.0, 4.9, 5.0, 9.9] {
                let p = GeoPoint::new(lat, lon);
                let n = quads.iter().filter(|q| q.contains(&p)).count();
                assert_eq!(n, 1, "point {p:?}");
            }
        }
    }

    #[test]
    fn quadrants_quarter_area() {
        let r = GeoRect::new(0.0, 0.0, 8.0, 8.0);
        for q in r.quadrants() {
            assert!((q.deg_area() - r.deg_area() / 4.0).abs() < 1e-9);
        }
    }
}
