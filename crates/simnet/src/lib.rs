#![warn(missing_docs)]

//! Deterministic discrete-event simulation core for the Periscope
//! reproduction.
//!
//! Everything in the reproduction runs on a virtual clock ([`SimTime`],
//! microsecond ticks) driven by a time-ordered [`event::EventQueue`]. All
//! randomness derives from one seed through [`rng::RngFactory`], which hands
//! out independent, label-addressed streams so adding a consumer never
//! perturbs existing ones.
//!
//! Independent work items (sessions, sweep points, crawls) fan out across
//! OS threads through [`par::indexed_map`], which reassembles results in
//! input order so thread count never changes any output byte.
//!
//! The network model is deliberately a *flow/packet hybrid*: media bytes move
//! through [`link::Link`]s in MTU-sized packets with FIFO queueing and
//! serialization delay, shaped by an optional [`shaper::TokenBucket`] (the
//! `tc` bandwidth limiter from the paper's testbed), while control traffic is
//! modeled at message granularity. [`tcp::TcpModel`] adds slow-start and
//! congestion-window dynamics for HLS segment fetches, where the first-window
//! behaviour dominates join time. [`clock::WallClock`] models imperfect NTP
//! sync, which the paper notes produced "small negative time differences" in
//! delivery-latency measurements.

pub mod clock;
pub mod datagram;
pub mod dist;
pub mod event;
pub mod fault;
pub mod geo;
pub mod link;
pub mod par;
pub mod pool;
pub mod rng;
pub mod shaper;
pub mod tcp;
pub mod time;

pub use clock::WallClock;
pub use datagram::{DatagramLink, DgramDelivery};
pub use event::EventQueue;
pub use fault::{FaultConfig, FaultRng, GroundTruthWindow, OUTAGE_SLOT_US};
pub use geo::{GeoPoint, GeoRect};
pub use link::Link;
pub use pool::{BufPool, PooledBuf};
pub use rng::{CounterRng, Rng, RngFactory};
pub use shaper::TokenBucket;
pub use tcp::TcpModel;
pub use time::{SimDuration, SimTime};
