//! Point-to-point link model: serialization delay, FIFO queueing,
//! propagation delay, bounded buffer with tail drop.
//!
//! A link transmits at `rate_bps`; a packet of `n` bytes occupies the wire
//! for `8n / rate` seconds. Packets queue behind the in-flight one (tracked
//! by `busy_until`), and a bounded queue drops arrivals that would exceed the
//! buffer — the behaviour that turns a `tc` bandwidth limit into stalls in
//! Figure 3(b).

use crate::time::{SimDuration, SimTime};

/// Standard Ethernet-ish MTU used to packetize media flows.
pub const MTU_BYTES: usize = 1448;

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Packet will arrive at the far end at this time.
    At(SimTime),
    /// Packet was dropped: the queue was full.
    Dropped,
}

impl Delivery {
    /// Arrival time, if delivered.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::At(t) => Some(t),
            Delivery::Dropped => None,
        }
    }
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    rate_bps: f64,
    propagation: SimDuration,
    /// Queue capacity in bytes (bytes waiting, excluding the in-flight
    /// packet). `usize::MAX` means unbounded.
    queue_capacity: usize,
    /// Time the transmitter becomes free.
    busy_until: SimTime,
    /// Bytes currently queued (scheduled but not yet started).
    queued_bytes: usize,
    /// Completion times of queued packets, to age out `queued_bytes`.
    inflight: std::collections::VecDeque<(SimTime, usize)>,
    /// Total bytes accepted.
    pub bytes_sent: u64,
    /// Total bytes dropped.
    pub bytes_dropped: u64,
}

impl Link {
    /// Creates a link with the given rate (bits/second), one-way propagation
    /// delay, and queue capacity in bytes.
    pub fn new(rate_bps: f64, propagation: SimDuration, queue_capacity: usize) -> Self {
        assert!(rate_bps > 0.0, "link rate must be positive");
        Link {
            rate_bps,
            propagation,
            queue_capacity,
            busy_until: SimTime::ZERO,
            queued_bytes: 0,
            inflight: std::collections::VecDeque::new(),
            bytes_sent: 0,
            bytes_dropped: 0,
        }
    }

    /// Unbounded-buffer convenience constructor.
    pub fn unbounded(rate_bps: f64, propagation: SimDuration) -> Self {
        Link::new(rate_bps, propagation, usize::MAX)
    }

    /// Link rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Serialization time for `bytes` at the link rate.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }

    /// Offers a packet of `bytes` at time `now`. Returns the delivery time at
    /// the far end, or `Dropped` if the queue is full.
    pub fn enqueue(&mut self, now: SimTime, bytes: usize) -> Delivery {
        self.expire(now);
        if self.queued_bytes.saturating_add(bytes) > self.queue_capacity {
            self.bytes_dropped += bytes as u64;
            return Delivery::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + self.serialization(bytes);
        self.busy_until = done;
        self.queued_bytes += bytes;
        self.inflight.push_back((done, bytes));
        self.bytes_sent += bytes as u64;
        Delivery::At(done + self.propagation)
    }

    /// Offers a batch of packets, all arriving at `now`, calling `deliver`
    /// once per packet with its outcome.
    ///
    /// Semantically identical to calling [`Link::enqueue`] once per size, in
    /// order — but the queue aging runs once and the transmitter/queue
    /// bookkeeping stays in locals for the whole batch, which is what lets a
    /// packetized send (one message → many MTU chunks) pump packets at
    /// memcpy-like cost.
    pub fn enqueue_batch(
        &mut self,
        now: SimTime,
        sizes: impl IntoIterator<Item = usize>,
        mut deliver: impl FnMut(Delivery),
    ) {
        self.expire(now);
        let mut busy = self.busy_until.max(now);
        let mut queued = self.queued_bytes;
        let mut sent = 0u64;
        let mut dropped = 0u64;
        for bytes in sizes {
            if queued.saturating_add(bytes) > self.queue_capacity {
                dropped += bytes as u64;
                deliver(Delivery::Dropped);
                continue;
            }
            let done = busy + self.serialization(bytes);
            busy = done;
            queued += bytes;
            self.inflight.push_back((done, bytes));
            sent += bytes as u64;
            deliver(Delivery::At(done + self.propagation));
        }
        self.busy_until = busy;
        self.queued_bytes = queued;
        self.bytes_sent += sent;
        self.bytes_dropped += dropped;
    }

    /// Sends a burst of `total` bytes as MTU packets; returns per-packet
    /// arrival times (drops omitted).
    pub fn enqueue_burst(&mut self, now: SimTime, total: usize) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(total / MTU_BYTES + 1);
        let mut remaining = total;
        while remaining > 0 {
            let pkt = remaining.min(MTU_BYTES);
            if let Delivery::At(t) = self.enqueue(now, pkt) {
                out.push(t);
            }
            remaining -= pkt;
        }
        out
    }

    /// Current backlog in bytes (queued, not yet fully serialized).
    pub fn backlog(&mut self, now: SimTime) -> usize {
        self.expire(now);
        self.queued_bytes
    }

    /// Time at which the transmitter next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&(done, bytes)) = self.inflight.front() {
            if done <= now {
                self.queued_bytes -= bytes;
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> f64 {
        m * 1e6
    }

    #[test]
    fn serialization_delay_exact() {
        let l = Link::unbounded(mbps(8.0), SimDuration::ZERO);
        // 1000 bytes at 8 Mbps = 1 ms.
        assert_eq!(l.serialization(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn single_packet_delivery() {
        let mut l = Link::unbounded(mbps(8.0), SimDuration::from_millis(10));
        let d = l.enqueue(SimTime::ZERO, 1000);
        assert_eq!(d, Delivery::At(SimTime::from_millis(11)));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = Link::unbounded(mbps(8.0), SimDuration::ZERO);
        let d1 = l.enqueue(SimTime::ZERO, 1000);
        let d2 = l.enqueue(SimTime::ZERO, 1000);
        assert_eq!(d1, Delivery::At(SimTime::from_millis(1)));
        assert_eq!(d2, Delivery::At(SimTime::from_millis(2)));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = Link::unbounded(mbps(8.0), SimDuration::ZERO);
        l.enqueue(SimTime::ZERO, 1000);
        let d = l.enqueue(SimTime::from_secs(1), 1000);
        assert_eq!(d, Delivery::At(SimTime::from_secs(1) + SimDuration::from_millis(1)));
    }

    #[test]
    fn bounded_queue_drops() {
        let mut l = Link::new(mbps(8.0), SimDuration::ZERO, 1500);
        assert!(matches!(l.enqueue(SimTime::ZERO, 1000), Delivery::At(_)));
        // 1000 queued; adding 1000 more exceeds 1500 capacity.
        assert_eq!(l.enqueue(SimTime::ZERO, 1000), Delivery::Dropped);
        assert_eq!(l.bytes_dropped, 1000);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = Link::new(mbps(8.0), SimDuration::ZERO, 1500);
        l.enqueue(SimTime::ZERO, 1000);
        // After 1 ms the first packet has serialized; queue is empty again.
        assert!(matches!(l.enqueue(SimTime::from_millis(1), 1000), Delivery::At(_)));
    }

    #[test]
    fn burst_packetizes_at_mtu() {
        let mut l = Link::unbounded(mbps(100.0), SimDuration::ZERO);
        let arrivals = l.enqueue_burst(SimTime::ZERO, 3 * MTU_BYTES + 10);
        assert_eq!(arrivals.len(), 4);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn backlog_reflects_queue() {
        let mut l = Link::unbounded(mbps(8.0), SimDuration::ZERO);
        l.enqueue(SimTime::ZERO, 1000);
        l.enqueue(SimTime::ZERO, 1000);
        assert_eq!(l.backlog(SimTime::ZERO), 2000);
        assert_eq!(l.backlog(SimTime::from_millis(1)), 1000);
        assert_eq!(l.backlog(SimTime::from_millis(2)), 0);
    }

    #[test]
    fn batch_matches_per_packet_enqueue() {
        let sizes = [1000usize, 1448, 64, 1448, 900, 1448, 1448, 32];
        let mut a = Link::new(mbps(4.0), SimDuration::from_millis(7), 4000);
        let mut b = a.clone();
        // Pre-load some state so the batch starts mid-stream.
        a.enqueue(SimTime::ZERO, 1200);
        b.enqueue(SimTime::ZERO, 1200);
        let now = SimTime::from_millis(2);
        let per_packet: Vec<Delivery> = sizes.iter().map(|&s| a.enqueue(now, s)).collect();
        let mut batched = Vec::new();
        b.enqueue_batch(now, sizes.iter().copied(), |d| batched.push(d));
        assert_eq!(per_packet, batched);
        assert_eq!(a.busy_until(), b.busy_until());
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.bytes_dropped, b.bytes_dropped);
        assert_eq!(a.backlog(now), b.backlog(now));
    }

    #[test]
    fn batch_drops_when_queue_fills() {
        let mut l = Link::new(mbps(8.0), SimDuration::ZERO, 2500);
        let mut out = Vec::new();
        l.enqueue_batch(SimTime::ZERO, [1000, 1000, 1000], |d| out.push(d));
        assert!(matches!(out[0], Delivery::At(_)));
        assert!(matches!(out[1], Delivery::At(_)));
        assert_eq!(out[2], Delivery::Dropped);
        assert_eq!(l.bytes_dropped, 1000);
    }

    #[test]
    fn throughput_matches_rate() {
        // Send 1 MB through a 2 Mbps link: last byte should exit at ~4 s.
        let mut l = Link::unbounded(mbps(2.0), SimDuration::ZERO);
        let arrivals = l.enqueue_burst(SimTime::ZERO, 1_000_000);
        let last = arrivals.last().unwrap();
        assert!((last.as_secs_f64() - 4.0).abs() < 0.01, "last={last}");
    }
}
