//! Deterministic fan-out across OS threads.
//!
//! The measurement side of the reproduction is embarrassingly parallel:
//! Teleport sessions are mutually independent (each is a fresh app launch
//! against its own broadcast with its own `session/{i}` RNG label), every
//! bandwidth-sweep point owns a `dataset-limit-{i}` RNG child, and each
//! time-of-day crawl builds its own `world-at-{h}` service. [`indexed_map`]
//! exploits that: work items are executed on a pool of scoped OS threads
//! and the results are reassembled **in input order**, so the output is
//! byte-identical to a serial run no matter how many workers ran or how
//! the scheduler interleaved them. Determinism therefore rests on two
//! properties the caller must uphold (and every call site in this
//! workspace does):
//!
//! 1. the work function draws randomness only from RNG streams keyed on
//!    the item's *index or label*, never from a shared sequential stream;
//! 2. the work function does not mutate shared state (it takes `&self`
//!    receivers only — the compiler enforces this via the `Sync` bounds).
//!
//! No external dependencies: plain `std::thread::scope` with an atomic
//! work-stealing counter. Threads are cheap at this granularity — one
//! session simulates tens of milliseconds of CPU work, so spawning a
//! handful of workers per dataset is noise.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob to a concrete worker count.
///
/// `n > 0` is taken literally (`1` forces the exact serial code path).
/// `n == 0` means *auto*: the `PSCP_THREADS` environment variable if it
/// parses to a positive integer, otherwise the machine's available
/// parallelism, falling back to 1 when that cannot be determined.
pub fn resolve_threads(n: usize) -> usize {
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("PSCP_THREADS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k > 0 {
                return k;
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Applies `f` to every item of `items` on up to `threads` worker threads
/// (`0` = auto, see [`resolve_threads`]) and returns the results in input
/// order.
///
/// `f` receives `(index, &item)`. With one worker (or one item) the work
/// runs inline on the caller's thread — no spawn, exactly the serial loop.
/// With more, workers pull indices from a shared atomic counter (cheap
/// dynamic load balancing: session costs vary by broadcast popularity) and
/// results are reassembled by index afterwards, so scheduling order never
/// leaks into the output. A panic in any worker propagates to the caller.
pub fn indexed_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len()).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("parallel worker panicked"));
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = indexed_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let work = |_: usize, &x: &u64| {
            // A little arithmetic so workers genuinely interleave.
            (0..1000u64).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = indexed_map(&items, 1, work);
        for threads in [2, 3, 8] {
            assert_eq!(serial, indexed_map(&items, threads, work), "threads={threads}");
        }
    }

    #[test]
    fn empty_input_ok() {
        let out: Vec<u32> = indexed_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_ok() {
        let out = indexed_map(&[1, 2, 3], 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        indexed_map(&items, 4, |_, &x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
