//! Deterministic fan-out across OS threads.
//!
//! The measurement side of the reproduction is embarrassingly parallel:
//! Teleport sessions are mutually independent (each is a fresh app launch
//! against its own broadcast with its own `session/{i}` RNG label), every
//! bandwidth-sweep point owns a `dataset-limit-{i}` RNG child, and each
//! time-of-day crawl builds its own `world-at-{h}` service. [`indexed_map`]
//! exploits that: work items are executed on a pool of scoped OS threads
//! and the results are reassembled **in input order**, so the output is
//! byte-identical to a serial run no matter how many workers ran or how
//! the scheduler interleaved them. Determinism therefore rests on two
//! properties the caller must uphold (and every call site in this
//! workspace does):
//!
//! 1. the work function draws randomness only from RNG streams keyed on
//!    the item's *index or label*, never from a shared sequential stream;
//! 2. the work function does not mutate shared state (it takes `&self`
//!    receivers only — the compiler enforces this via the `Sync` bounds).
//!
//! No external dependencies: plain `std::thread::scope` with an atomic
//! work-stealing counter. Threads are cheap at this granularity — one
//! session simulates tens of milliseconds of CPU work, so spawning a
//! handful of workers per dataset is noise.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob to a concrete worker count.
///
/// `n > 0` is taken literally (`1` forces the exact serial code path).
/// `n == 0` means *auto*: the `PSCP_THREADS` environment variable if it
/// parses to a positive integer, otherwise the machine's available
/// parallelism, falling back to 1 when that cannot be determined.
pub fn resolve_threads(n: usize) -> usize {
    if n > 0 {
        return n;
    }
    if let Ok(v) = std::env::var("PSCP_THREADS") {
        if let Ok(k) = v.trim().parse::<usize>() {
            if k > 0 {
                return k;
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Applies `f` to every item of `items` on up to `threads` worker threads
/// (`0` = auto, see [`resolve_threads`]) and returns the results in input
/// order.
///
/// `f` receives `(index, &item)`. With one worker (or one item) the work
/// runs inline on the caller's thread — no spawn, exactly the serial loop.
/// With more, workers pull indices from a shared atomic counter (cheap
/// dynamic load balancing: session costs vary by broadcast popularity) and
/// results are reassembled by index afterwards, so scheduling order never
/// leaks into the output. A panic in any worker propagates to the caller.
pub fn indexed_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len()).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("parallel worker panicked"));
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Wall-clock accounting for one [`indexed_map_timed`] call.
///
/// Strictly profiling data: none of it feeds back into simulation state,
/// so the timed variant produces the same results as [`indexed_map`].
#[derive(Debug, Clone)]
pub struct ParProfile {
    /// Workers that actually ran (1 = the inline serial path).
    pub workers: usize,
    /// Wall-clock seconds for the whole map.
    pub wall_secs: f64,
    /// Seconds each worker spent inside the work function (one entry per
    /// worker; the gap to `wall_secs` is that worker's idle tail).
    pub busy_secs: Vec<f64>,
}

impl ParProfile {
    /// Summed busy time across all workers.
    pub fn busy_total(&self) -> f64 {
        self.busy_secs.iter().sum()
    }
}

/// [`indexed_map`] plus per-worker busy timing.
///
/// Results are identical to [`indexed_map`] (same ordering contract, same
/// panic propagation); the extra cost is two `Instant::now()` calls per
/// item, paid only by callers that asked for profiling.
pub fn indexed_map_timed<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<R>, ParProfile)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use std::time::Instant;
    let workers = resolve_threads(threads).min(items.len()).max(1);
    let started = Instant::now();
    if workers == 1 {
        let mut busy = 0.0;
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let t0 = Instant::now();
                let r = f(i, item);
                busy += t0.elapsed().as_secs_f64();
                r
            })
            .collect();
        let profile = ParProfile {
            workers: 1,
            wall_secs: started.elapsed().as_secs_f64(),
            busy_secs: vec![busy],
        };
        return (out, profile);
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let mut busy_secs: Vec<f64> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut busy = 0.0;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        local.push((i, f(i, &items[i])));
                        busy += t0.elapsed().as_secs_f64();
                    }
                    (local, busy)
                })
            })
            .collect();
        for h in handles {
            let (local, busy) = h.join().expect("parallel worker panicked");
            collected.extend(local);
            busy_secs.push(busy);
        }
    });
    collected.sort_by_key(|&(i, _)| i);
    let out = collected.into_iter().map(|(_, r)| r).collect();
    (out, ParProfile { workers, wall_secs: started.elapsed().as_secs_f64(), busy_secs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = indexed_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..57).collect();
        let work = |_: usize, &x: &u64| {
            // A little arithmetic so workers genuinely interleave.
            (0..1000u64).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = indexed_map(&items, 1, work);
        for threads in [2, 3, 8] {
            assert_eq!(serial, indexed_map(&items, threads, work), "threads={threads}");
        }
    }

    #[test]
    fn empty_input_ok() {
        let out: Vec<u32> = indexed_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_ok() {
        let out = indexed_map(&[1, 2, 3], 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn timed_map_matches_untimed() {
        let items: Vec<u64> = (0..40).collect();
        let work = |i: usize, &x: &u64| x.wrapping_mul(17).wrapping_add(i as u64);
        let plain = indexed_map(&items, 4, work);
        for threads in [1, 4] {
            let (timed, profile) = indexed_map_timed(&items, threads, work);
            assert_eq!(plain, timed, "threads={threads}");
            assert_eq!(profile.workers, threads);
            assert_eq!(profile.busy_secs.len(), threads);
            assert!(profile.wall_secs >= 0.0);
            assert!(profile.busy_total() >= 0.0);
        }
    }

    #[test]
    fn timed_map_empty_input_ok() {
        let (out, profile) = indexed_map_timed(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(profile.workers, 1);
        assert_eq!(profile.busy_secs, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        indexed_map(&items, 4, |_, &x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
