//! Recycling byte-buffer pool for allocation-free hot loops.
//!
//! The media byte pump (RTMP chunking, TS packetization, packet capture)
//! runs millions of times per simulated session; allocating a fresh
//! `Vec<u8>` per packet dominates its profile. [`BufPool`] keeps a small
//! free list of previously used buffers: [`BufPool::take`] hands out a
//! cleared buffer (retaining its capacity, so steady state never touches
//! the allocator), and dropping the [`PooledBuf`] handle returns it.
//!
//! Discipline: buffers are recycled with `clear()` — length reset, capacity
//! kept, **no zero fill**. Callers must therefore treat a fresh buffer as
//! empty and only read bytes they wrote, which `Vec`'s length tracking
//! already enforces. Capacity requests go through `reserve`, which only
//! allocates on first growth past the high-water mark.
//!
//! Sessions are single-threaded (parallelism is across sessions, via
//! `par::indexed_map`), so the pool is deliberately `Rc`-based and `!Send`.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Default number of buffers a pool retains on its free list.
pub const DEFAULT_POOL_RETAIN: usize = 8;

#[derive(Debug)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    max_retained: usize,
}

/// A fixed-capacity recycling pool of byte buffers.
///
/// Cloning the pool is cheap and yields a handle to the same free list.
#[derive(Debug, Clone)]
pub struct BufPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new(DEFAULT_POOL_RETAIN)
    }
}

impl BufPool {
    /// Creates a pool that retains at most `max_retained` free buffers;
    /// buffers returned beyond that are simply dropped.
    pub fn new(max_retained: usize) -> Self {
        BufPool {
            inner: Rc::new(RefCell::new(PoolInner {
                free: Vec::with_capacity(max_retained),
                max_retained,
            })),
        }
    }

    /// Takes a cleared buffer with at least `min_capacity` bytes of
    /// capacity. Reuses a pooled buffer when one is available (growing it
    /// if needed); allocates only when the free list is empty.
    pub fn take(&self, min_capacity: usize) -> PooledBuf {
        let mut buf = self.inner.borrow_mut().free.pop().unwrap_or_default();
        debug_assert!(buf.is_empty(), "pooled buffers are stored cleared");
        if buf.capacity() < min_capacity {
            buf.reserve(min_capacity);
        }
        PooledBuf { buf, pool: Rc::clone(&self.inner) }
    }

    /// Number of buffers currently on the free list (diagnostics/tests).
    pub fn free_count(&self) -> usize {
        self.inner.borrow().free.len()
    }
}

/// A byte buffer borrowed from a [`BufPool`]; derefs to `Vec<u8>` and
/// returns to the pool (cleared, capacity kept) on drop.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Rc<RefCell<PoolInner>>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool, keeping its contents.
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut inner = self.pool.borrow_mut();
        if inner.free.len() < inner.max_retained && self.buf.capacity() > 0 {
            self.buf.clear();
            inner.free.push(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_drop_recycles_capacity() {
        let pool = BufPool::new(4);
        let ptr;
        {
            let mut b = pool.take(1024);
            b.extend_from_slice(&[1, 2, 3]);
            ptr = b.as_ptr();
            assert!(b.capacity() >= 1024);
        }
        assert_eq!(pool.free_count(), 1);
        let b2 = pool.take(16);
        // Same allocation comes back, cleared but with capacity intact.
        assert_eq!(b2.as_ptr(), ptr);
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 1024);
    }

    #[test]
    fn retain_limit_is_enforced() {
        let pool = BufPool::new(2);
        let bufs: Vec<PooledBuf> = (0..5).map(|_| pool.take(8)).collect();
        drop(bufs);
        assert_eq!(pool.free_count(), 2);
    }

    #[test]
    fn into_vec_detaches() {
        let pool = BufPool::new(2);
        let mut b = pool.take(8);
        b.push(42);
        let v = b.into_vec();
        assert_eq!(v, vec![42]);
        // Detached buffers do not return to the pool.
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn steady_state_take_does_not_allocate_new_storage() {
        let pool = BufPool::new(1);
        drop(pool.take(4096));
        for _ in 0..100 {
            let b = pool.take(4096);
            assert!(b.capacity() >= 4096);
            drop(b);
        }
        assert_eq!(pool.free_count(), 1);
    }
}
