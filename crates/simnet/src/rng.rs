//! Seed management: one master seed, many independent labeled streams.
//!
//! Components ask the [`RngFactory`] for a stream by label (e.g.
//! `"workload/durations"`, `"session/42/jitter"`). Stream seeds are derived
//! with a SplitMix64-based hash of the label, so adding or removing one
//! consumer never shifts the randomness another consumer sees — the property
//! that keeps figure regeneration stable as the code evolves.
//!
//! The streams themselves are in-tree, dependency-free [`CounterRng`]s: a
//! Weyl counter stepped by the golden-ratio increment and finalized with the
//! SplitMix64 mixer (the same core the fault layer's `FaultRng` uses). The
//! whole workspace draws randomness through the [`Rng`] trait below, so
//! `cargo tree` stays free of external crates.
//!
//! ```
//! use pscp_simnet::rng::{Rng, RngFactory};
//!
//! let f = RngFactory::new(2016);
//! let mut stream = f.stream("workload/durations");
//! let u: f64 = stream.gen();           // uniform in [0, 1)
//! let word: u64 = stream.gen();        // 64 uniform bits
//! assert!((0.0..1.0).contains(&u));
//!
//! // Same label, same stream — always.
//! let a: u64 = f.stream("x").gen();
//! let b: u64 = f.stream("x").gen();
//! assert_eq!(a, b);
//! ```

/// Uniform random source. Implemented by [`CounterRng`]; consumers bound
/// generic parameters as `R: Rng + ?Sized` so tests can substitute
/// instrumented sources.
pub trait Rng {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws a value of any [`Sample`] type: `rng.gen::<f64>()` is uniform
    /// in `[0, 1)`, integer types get full-width uniform bits.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

/// Types drawable from an [`Rng`] via [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Sample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A counter-based deterministic RNG: the state is a Weyl sequence (adds the
/// golden-ratio constant each step) and each output is the SplitMix64
/// finalizer of the state. Period 2^64 per stream; streams for different
/// labels start from independently mixed states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Creates a stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        CounterRng { state: splitmix64(seed ^ 0xa54f_f53a_5f1d_36f1) }
    }
}

impl Rng for CounterRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64_mix(self.state)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Derives independent [`CounterRng`] streams from a master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory from the master seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG stream for `label`.
    pub fn stream(&self, label: &str) -> CounterRng {
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = splitmix64(state ^ u64::from_le_bytes(word));
        }
        CounterRng::new(state)
    }

    /// Convenience: stream for a label with a numeric suffix, e.g. per
    /// session or per broadcast.
    pub fn stream_n(&self, label: &str, n: u64) -> CounterRng {
        self.stream(&format!("{label}/{n}"))
    }

    /// Derives a child factory, used to give a subsystem its own namespace.
    pub fn child(&self, label: &str) -> RngFactory {
        let mut state = self.seed ^ 0x2545_f491_4f6c_dd1d;
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = splitmix64(state ^ u64::from_le_bytes(word));
        }
        RngFactory { seed: state }
    }
}

/// SplitMix64 step: advance by the golden-ratio increment, then mix.
fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

/// The SplitMix64 finalizer on its own (no increment).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = {
            let mut r = f.stream("x");
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream("x");
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_n_matches_formatted_label() {
        let f = RngFactory::new(3);
        let a: u64 = f.stream_n("s", 42).gen();
        let b: u64 = f.stream("s/42").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn child_namespace_is_independent() {
        let f = RngFactory::new(3);
        let c = f.child("sub");
        let a: u64 = c.stream("x").gen();
        let b: u64 = f.stream("x").gen();
        assert_ne!(a, b);
        // But reproducible.
        assert_eq!(c.seed(), f.child("sub").seed());
    }

    #[test]
    fn labels_longer_than_word_distinguished() {
        let f = RngFactory::new(9);
        let a: u64 = f.stream("abcdefgh-1").gen();
        let b: u64 = f.stream("abcdefgh-2").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_quality_rough_uniformity() {
        // A crude sanity check that bits look uniform: mean of 10k u8 draws.
        let f = RngFactory::new(11);
        let mut rng = f.stream("uniformity");
        let mean: f64 = (0..10_000).map(|_| rng.gen::<u8>() as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 127.5).abs() < 3.0, "mean={mean}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = RngFactory::new(13).stream("unit");
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn bool_roughly_balanced() {
        let mut rng = RngFactory::new(15).stream("bool");
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues={trues}");
    }

    #[test]
    fn rng_through_mut_ref_advances_underlying() {
        let mut rng = RngFactory::new(17).stream("ref");
        let a: u64 = {
            let r: &mut CounterRng = &mut rng;
            Sample::sample(r)
        };
        let b: u64 = rng.gen();
        assert_ne!(a, b);
    }
}
