//! Seed management: one master seed, many independent labeled streams.
//!
//! Components ask the [`RngFactory`] for a stream by label (e.g.
//! `"workload/durations"`, `"session/42/jitter"`). Stream seeds are derived
//! with a SplitMix64-based hash of the label, so adding or removing one
//! consumer never shifts the randomness another consumer sees — the property
//! that keeps figure regeneration stable as the code evolves.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent [`StdRng`] streams from a master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory from the master seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG stream for `label`.
    pub fn stream(&self, label: &str) -> StdRng {
        let mut key = [0u8; 32];
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = splitmix64(state ^ u64::from_le_bytes(word));
        }
        for (i, slot) in key.chunks_exact_mut(8).enumerate() {
            state = splitmix64(state.wrapping_add(i as u64 + 1));
            slot.copy_from_slice(&state.to_le_bytes());
        }
        StdRng::from_seed(key)
    }

    /// Convenience: stream for a label with a numeric suffix, e.g. per
    /// session or per broadcast.
    pub fn stream_n(&self, label: &str, n: u64) -> StdRng {
        self.stream(&format!("{label}/{n}"))
    }

    /// Derives a child factory, used to give a subsystem its own namespace.
    pub fn child(&self, label: &str) -> RngFactory {
        let mut state = self.seed ^ 0x2545_f491_4f6c_dd1d;
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state = splitmix64(state ^ u64::from_le_bytes(word));
        }
        RngFactory { seed: state }
    }
}

/// SplitMix64 step: a strong, fast 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u64> =
            f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> =
            f.stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("x").gen();
        let b: u64 = f.stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_n_matches_formatted_label() {
        let f = RngFactory::new(3);
        let a: u64 = f.stream_n("s", 42).gen();
        let b: u64 = f.stream("s/42").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn child_namespace_is_independent() {
        let f = RngFactory::new(3);
        let c = f.child("sub");
        let a: u64 = c.stream("x").gen();
        let b: u64 = f.stream("x").gen();
        assert_ne!(a, b);
        // But reproducible.
        assert_eq!(c.seed(), f.child("sub").seed());
    }

    #[test]
    fn labels_longer_than_word_distinguished() {
        let f = RngFactory::new(9);
        let a: u64 = f.stream("abcdefgh-1").gen();
        let b: u64 = f.stream("abcdefgh-2").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_quality_rough_uniformity() {
        // A crude sanity check that bits look uniform: mean of 10k u8 draws.
        let f = RngFactory::new(11);
        let mut rng = f.stream("uniformity");
        let mean: f64 = (0..10_000).map(|_| rng.gen::<u8>() as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 127.5).abs() < 3.0, "mean={mean}");
    }
}
