//! Token-bucket traffic shaper, the model of the paper's `tc` bandwidth
//! limiter ("In some experiments, we imposed artificial bandwidth limits with
//! the tc command on the Linux host", §2).
//!
//! Tokens accrue at `rate_bps` up to `burst_bytes`; a packet departs when
//! enough tokens are available, otherwise it waits (shaping, not policing —
//! `tc tbf` queues rather than drops, up to its limit).

use crate::time::{SimDuration, SimTime};

/// A byte-granularity token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: f64,
    burst_bytes: f64,
    /// Tokens available at `updated`.
    tokens: f64,
    updated: SimTime,
    /// Earliest time the next packet may start (FIFO shaping discipline).
    next_free: SimTime,
}

impl TokenBucket {
    /// Creates a bucket with the given rate (bits/second) and burst (bytes).
    /// The bucket starts full.
    pub fn new(rate_bps: f64, burst_bytes: usize) -> Self {
        assert!(rate_bps > 0.0, "shaper rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            updated: SimTime::ZERO,
            next_free: SimTime::ZERO,
        }
    }

    /// Shaper rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Offers a packet of `bytes` at `now`; returns when its last byte clears
    /// the shaper. Packets are served FIFO: a packet offered at `now` cannot
    /// depart before previously offered ones.
    pub fn release_time(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = now.max(self.next_free);
        self.refill(start);
        let need = bytes as f64;
        let depart = if self.tokens >= need {
            self.tokens -= need;
            start
        } else {
            let deficit = need - self.tokens;
            self.tokens = 0.0;
            let wait = SimDuration::from_secs_f64(deficit * 8.0 / self.rate_bps);
            start + wait
        };
        self.updated = depart;
        self.next_free = depart;
        depart
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.updated).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps / 8.0).min(self.burst_bytes);
        self.updated = now;
    }

    /// Tokens currently in the bucket at `now` (for tests/diagnostics).
    pub fn tokens_at(&mut self, now: SimTime) -> f64 {
        let start = now.max(self.next_free);
        self.refill(start);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_immediately() {
        let mut tb = TokenBucket::new(1e6, 10_000);
        assert_eq!(tb.release_time(SimTime::ZERO, 5_000), SimTime::ZERO);
        assert_eq!(tb.release_time(SimTime::ZERO, 5_000), SimTime::ZERO);
    }

    #[test]
    fn beyond_burst_is_paced() {
        let mut tb = TokenBucket::new(8e6, 1_000); // 1 MB/s, 1 KB burst
        assert_eq!(tb.release_time(SimTime::ZERO, 1_000), SimTime::ZERO);
        // Next 1000 bytes need 1000 tokens at 1e6 tokens/s -> 1 ms.
        let t = tb.release_time(SimTime::ZERO, 1_000);
        assert_eq!(t, SimTime::from_millis(1));
    }

    #[test]
    fn long_run_rate_is_enforced() {
        let mut tb = TokenBucket::new(2e6, 10_000); // 2 Mbps
        let mut last = SimTime::ZERO;
        let total_bytes = 250_000 * 8; // 2,000,000 bytes = 16 Mbit = 8 s at 2 Mbps
        let pkt = 1_000;
        for _ in 0..(total_bytes / pkt) {
            last = tb.release_time(SimTime::ZERO, pkt);
        }
        // 2,000,000 bytes at 2 Mbps = 8 s (minus the initial burst credit).
        let expected = (total_bytes as f64 - 10_000.0) * 8.0 / 2e6;
        assert!((last.as_secs_f64() - expected).abs() < 0.01, "last={last}");
    }

    #[test]
    fn idle_refills_up_to_burst() {
        let mut tb = TokenBucket::new(8e6, 2_000);
        tb.release_time(SimTime::ZERO, 2_000); // drain
                                               // After 10 s idle, bucket holds exactly the burst, no more.
        assert!((tb.tokens_at(SimTime::from_secs(10)) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_ordering() {
        let mut tb = TokenBucket::new(8e6, 1_000);
        let t1 = tb.release_time(SimTime::ZERO, 1_000);
        let t2 = tb.release_time(SimTime::ZERO, 500);
        let t3 = tb.release_time(SimTime::ZERO, 500);
        assert!(t1 <= t2 && t2 <= t3);
    }

    #[test]
    fn release_monotone_in_time() {
        let mut tb = TokenBucket::new(1e6, 1_500);
        let a = tb.release_time(SimTime::from_secs(1), 1_500);
        let b = tb.release_time(SimTime::from_secs(1), 1_500);
        let c = tb.release_time(SimTime::from_secs(2), 100);
        assert!(a <= b && b <= c.max(b));
    }
}
