//! Round-based TCP transfer model.
//!
//! HLS join time in the paper is dominated by fetching the first segments
//! over fresh or mostly idle connections, where slow start — not the
//! bottleneck rate — sets the pace. Modeling TCP per-packet for thousands of
//! sessions is wasteful; per-*round* is accurate at the granularity the
//! figures need: each RTT a window of `cwnd` segments arrives, the window
//! doubles (slow start) until it saturates the bottleneck, after which the
//! transfer proceeds fluidly at the bottleneck rate.

use crate::time::{SimDuration, SimTime};

/// Default initial congestion window (RFC 6928).
pub const INIT_CWND_SEGMENTS: u64 = 10;

/// A TCP path model: fixed RTT plus a bottleneck rate.
#[derive(Debug, Clone, Copy)]
pub struct TcpModel {
    /// Maximum segment size in bytes.
    pub mss: usize,
    /// Round-trip time of the path.
    pub rtt: SimDuration,
    /// Bottleneck rate in bits/second.
    pub bottleneck_bps: f64,
}

/// Progressive arrival schedule of one transfer.
#[derive(Debug, Clone)]
pub struct TransferSchedule {
    /// (arrival time, bytes arriving) chunks in time order.
    pub chunks: Vec<(SimTime, usize)>,
    /// Time the last byte arrives.
    pub completion: SimTime,
}

impl TcpModel {
    /// Creates a model; RTT may be zero (loopback-style paths).
    pub fn new(mss: usize, rtt: SimDuration, bottleneck_bps: f64) -> Self {
        assert!(mss > 0, "mss must be positive");
        assert!(bottleneck_bps > 0.0, "bottleneck must be positive");
        TcpModel { mss, rtt, bottleneck_bps }
    }

    /// Number of segments per RTT that saturates the bottleneck.
    fn saturation_cwnd(&self) -> u64 {
        let rtt_s = self.rtt.as_secs_f64().max(1e-4);
        let bytes_per_rtt = self.bottleneck_bps / 8.0 * rtt_s;
        ((bytes_per_rtt / self.mss as f64).ceil() as u64).max(1)
    }

    /// Schedules a transfer of `bytes` requested at `start`.
    ///
    /// `cwnd` carries congestion-window state across transfers on a
    /// persistent connection (pass `&mut INIT_CWND_SEGMENTS.clone()` for a
    /// fresh one); it is updated to the window reached by the end.
    /// `handshake` adds one extra RTT up front (TCP connect).
    pub fn transfer(
        &self,
        start: SimTime,
        bytes: usize,
        cwnd: &mut u64,
        handshake: bool,
    ) -> TransferSchedule {
        assert!(*cwnd >= 1, "cwnd must be at least one segment");
        let mut chunks = Vec::new();
        if bytes == 0 {
            return TransferSchedule { chunks, completion: start };
        }
        // Request propagates to the server in RTT/2; first data lands a full
        // RTT after the request (+1 RTT for the SYN exchange if cold).
        let mut round_start = if handshake { start + self.rtt } else { start };
        round_start += self.rtt;
        let sat = self.saturation_cwnd();
        let mut remaining = bytes;
        while remaining > 0 {
            if *cwnd >= sat {
                // Window saturates the pipe: drain the rest fluidly at the
                // bottleneck rate, in per-RTT chunks for progressiveness.
                let rate_bytes = self.bottleneck_bps / 8.0;
                let rtt_s = self.rtt.as_secs_f64().max(1e-4);
                let per_round = ((rate_bytes * rtt_s) as usize).max(self.mss);
                while remaining > 0 {
                    let take = remaining.min(per_round);
                    let dur = SimDuration::from_secs_f64(take as f64 * 8.0 / self.bottleneck_bps);
                    round_start += dur;
                    chunks.push((round_start, take));
                    remaining -= take;
                }
                break;
            }
            let window_bytes = (*cwnd as usize) * self.mss;
            let take = remaining.min(window_bytes);
            // The window's worth of data arrives spread over its own
            // serialization time at the bottleneck, bounded below by nothing:
            // the chunk is booked at its last-byte time.
            let ser = SimDuration::from_secs_f64(take as f64 * 8.0 / self.bottleneck_bps);
            chunks.push((round_start + ser, take));
            remaining -= take;
            // Next round begins an RTT later (or after serialization if that
            // is longer — ACK clocking cannot outrun the wire).
            round_start += std::cmp::max(self.rtt, ser);
            *cwnd = (*cwnd * 2).min(sat);
        }
        let completion = chunks.last().map(|&(t, _)| t).unwrap_or(start);
        TransferSchedule { chunks, completion }
    }

    /// Convenience: completion time of a cold transfer (fresh connection).
    pub fn cold_transfer_completion(&self, start: SimTime, bytes: usize) -> SimTime {
        let mut cwnd = INIT_CWND_SEGMENTS;
        self.transfer(start, bytes, &mut cwnd, true).completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(rtt_ms: u64, mbps: f64) -> TcpModel {
        TcpModel::new(1448, SimDuration::from_millis(rtt_ms), mbps * 1e6)
    }

    #[test]
    fn tiny_transfer_takes_about_one_rtt_warm() {
        let m = model(50, 100.0);
        let mut cwnd = INIT_CWND_SEGMENTS;
        let s = m.transfer(SimTime::ZERO, 1000, &mut cwnd, false);
        let t = s.completion.as_secs_f64();
        assert!((t - 0.05).abs() < 0.005, "t={t}");
    }

    #[test]
    fn handshake_adds_one_rtt() {
        let m = model(50, 100.0);
        let mut c1 = INIT_CWND_SEGMENTS;
        let mut c2 = INIT_CWND_SEGMENTS;
        let warm = m.transfer(SimTime::ZERO, 1000, &mut c1, false).completion;
        let cold = m.transfer(SimTime::ZERO, 1000, &mut c2, true).completion;
        let delta = cold.as_secs_f64() - warm.as_secs_f64();
        assert!((delta - 0.05).abs() < 1e-6, "delta={delta}");
    }

    #[test]
    fn large_transfer_approaches_bottleneck_rate() {
        let m = model(20, 2.0); // 2 Mbps
        let bytes = 2_000_000; // 16 Mbit -> ~8 s at 2 Mbps
        let t = m.cold_transfer_completion(SimTime::ZERO, bytes).as_secs_f64();
        assert!(t > 7.9 && t < 9.5, "t={t}");
    }

    #[test]
    fn slow_start_doubles_window() {
        let m = model(100, 1000.0); // huge pipe: pure slow-start regime
        let mut cwnd = 1;
        // 10 segments: rounds of 1, 2, 4 then 3 remaining segments.
        let s = m.transfer(SimTime::ZERO, 1448 * 10, &mut cwnd, false);
        assert_eq!(s.chunks.len(), 4);
        assert_eq!(s.chunks[0].1, 1448);
        assert_eq!(s.chunks[1].1, 2 * 1448);
        assert_eq!(s.chunks[2].1, 4 * 1448);
        assert_eq!(s.chunks[3].1, 3 * 1448);
    }

    #[test]
    fn cwnd_persists_across_transfers() {
        let m = model(50, 1000.0);
        let mut cwnd = INIT_CWND_SEGMENTS;
        m.transfer(SimTime::ZERO, 1_000_000, &mut cwnd, false);
        assert!(cwnd > INIT_CWND_SEGMENTS);
        // A warm window finishes the next transfer faster.
        let mut fresh = INIT_CWND_SEGMENTS;
        let warm = m.transfer(SimTime::ZERO, 500_000, &mut cwnd.clone(), false).completion;
        let cold = m.transfer(SimTime::ZERO, 500_000, &mut fresh, false).completion;
        assert!(warm < cold, "warm={warm} cold={cold}");
    }

    #[test]
    fn zero_bytes_is_instant() {
        let m = model(50, 10.0);
        let mut cwnd = INIT_CWND_SEGMENTS;
        let s = m.transfer(SimTime::from_secs(3), 0, &mut cwnd, false);
        assert_eq!(s.completion, SimTime::from_secs(3));
        assert!(s.chunks.is_empty());
    }

    #[test]
    fn chunks_are_time_ordered_and_sum_to_total() {
        let m = model(30, 5.0);
        let mut cwnd = INIT_CWND_SEGMENTS;
        let bytes = 777_777;
        let s = m.transfer(SimTime::ZERO, bytes, &mut cwnd, true);
        let sum: usize = s.chunks.iter().map(|&(_, b)| b).sum();
        assert_eq!(sum, bytes);
        for w in s.chunks.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(s.completion, s.chunks.last().unwrap().0);
    }

    #[test]
    fn faster_bottleneck_is_never_slower() {
        let slow = model(40, 1.0);
        let fast = model(40, 50.0);
        for &bytes in &[10_000usize, 100_000, 1_000_000] {
            let ts = slow.cold_transfer_completion(SimTime::ZERO, bytes);
            let tf = fast.cold_transfer_completion(SimTime::ZERO, bytes);
            assert!(tf <= ts, "bytes={bytes}");
        }
    }
}
