//! Virtual time: microsecond-resolution instants and durations.
//!
//! `std::time` types are deliberately not used: simulation time must be
//! decoupled from the host clock for determinism, and a compact `u64`
//! representation keeps event-queue keys cheap to compare.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since t=0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant; saturates to zero if `earlier` is
    /// actually later (never panics, simplifying jittered-clock arithmetic).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference in seconds (self - other); may be negative.
    pub fn signed_delta_secs(self, other: SimTime) -> f64 {
        (self.0 as i64 - other.0 as i64) as f64 / 1e6
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds; negative values clamp to
    /// zero (time never flows backwards in the simulator).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked subtraction, `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
    }

    #[test]
    fn saturating_since_never_negative() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(2));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn signed_delta_can_be_negative() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.signed_delta_secs(b), -1.0);
        assert_eq!(b.signed_delta_secs(a), 1.0);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-7).as_micros(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(3);
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
        assert_eq!(d - SimDuration::from_secs(1), SimDuration::from_secs(2));
        assert_eq!(d.saturating_sub(SimDuration::from_secs(10)), SimDuration::ZERO);
        assert_eq!(d.checked_sub(SimDuration::from_secs(10)), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_secs(1) - SimDuration::from_secs(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
