//! Property-based tests of the simulation substrate invariants.

use proptest::prelude::*;
use pscp_simnet::link::Delivery;
use pscp_simnet::tcp::INIT_CWND_SEGMENTS;
use pscp_simnet::{
    EventQueue, GeoPoint, GeoRect, Link, SimDuration, SimTime, TcpModel, TokenBucket,
};

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn link_deliveries_fifo_and_rate_bounded(
        sizes in prop::collection::vec(1usize..3000, 1..80),
        rate_mbps in 0.1f64..100.0,
        gap_us in 0u64..10_000,
    ) {
        let mut link = Link::unbounded(rate_mbps * 1e6, SimDuration::from_millis(5));
        let mut t = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        let mut total_bytes = 0usize;
        for &s in &sizes {
            let d = link.enqueue(t, s);
            let Delivery::At(arr) = d else { panic!("unbounded link never drops") };
            // FIFO: arrivals are non-decreasing.
            prop_assert!(arr >= last_arrival);
            last_arrival = arr;
            total_bytes += s;
            t += SimDuration::from_micros(gap_us);
        }
        // The last arrival cannot beat the physical minimum: total
        // serialization at the link rate plus propagation.
        let min_finish = SimDuration::from_secs_f64(total_bytes as f64 * 8.0 / (rate_mbps * 1e6));
        prop_assert!(
            last_arrival >= SimTime::ZERO + min_finish,
            "arrival {last_arrival} before physical bound"
        );
    }

    #[test]
    fn token_bucket_never_exceeds_rate(
        sizes in prop::collection::vec(1usize..2000, 2..60),
        rate_mbps in 0.1f64..50.0,
        burst in 1500usize..100_000,
    ) {
        let mut tb = TokenBucket::new(rate_mbps * 1e6, burst);
        let mut last = SimTime::ZERO;
        let mut total = 0usize;
        for &s in &sizes {
            let t = tb.release_time(SimTime::ZERO, s);
            prop_assert!(t >= last, "FIFO violated");
            last = t;
            total += s;
        }
        // Long-run: bytes released by `last` cannot exceed burst + rate*t.
        // Equality holds exactly at the last byte's release; each release
        // additionally rounds its wait onto the µs SimTime grid (up to
        // 0.5 µs of credit per packet at the shaper rate).
        let per_packet_slack = sizes.len() as f64 * rate_mbps * 1e6 / 8.0 * 1e-6;
        let cap = burst as f64 + rate_mbps * 1e6 / 8.0 * last.as_secs_f64() + per_packet_slack;
        prop_assert!(total as f64 <= cap + 8.0, "total={total} cap={cap}");
    }

    #[test]
    fn tcp_transfer_conserves_bytes_and_orders_chunks(
        bytes in 1usize..2_000_000,
        rtt_ms in 1u64..300,
        mbps in 0.2f64..200.0,
    ) {
        let m = TcpModel::new(1448, SimDuration::from_millis(rtt_ms), mbps * 1e6);
        let mut cwnd = INIT_CWND_SEGMENTS;
        let s = m.transfer(SimTime::from_secs(1), bytes, &mut cwnd, true);
        let sum: usize = s.chunks.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(sum, bytes);
        for w in s.chunks.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
        }
        // Completion bounded below by serialization time and above by a
        // generous slow-start bound.
        let serialize = bytes as f64 * 8.0 / (mbps * 1e6);
        prop_assert!(s.completion.as_secs_f64() >= 1.0 + serialize * 0.99);
    }

    #[test]
    fn tcp_monotone_in_bytes(
        small in 1usize..100_000,
        extra in 1usize..100_000,
        rtt_ms in 1u64..200,
        mbps in 0.2f64..100.0,
    ) {
        let m = TcpModel::new(1448, SimDuration::from_millis(rtt_ms), mbps * 1e6);
        let t1 = m.cold_transfer_completion(SimTime::ZERO, small);
        let t2 = m.cold_transfer_completion(SimTime::ZERO, small + extra);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn geo_distance_metric_properties(
        lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
        lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d_ab = a.distance_km(&b);
        let d_ba = b.distance_km(&a);
        prop_assert!((d_ab - d_ba).abs() < 1e-6, "symmetry");
        prop_assert!(d_ab >= 0.0);
        prop_assert!(d_ab <= 20_038.0, "half circumference bound, got {d_ab}");
    }

    #[test]
    fn quadrants_partition(
        south in -80.0f64..70.0, west in -170.0f64..160.0,
        dlat in 1.0f64..20.0, dlon in 1.0f64..20.0,
        plat in 0.001f64..0.999, plon in 0.001f64..0.999,
    ) {
        let rect = GeoRect::new(south, west, south + dlat, west + dlon);
        let p = GeoPoint::new(south + dlat * plat, west + dlon * plon);
        prop_assert!(rect.contains(&p));
        let n = rect.quadrants().iter().filter(|q| q.contains(&p)).count();
        prop_assert_eq!(n, 1, "point must fall in exactly one quadrant");
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z/]{1,20}") {
        use rand::Rng;
        let f = pscp_simnet::RngFactory::new(seed);
        let a: Vec<u32> = (0..4).map(|_| 0u32).collect::<Vec<_>>().iter()
            .map(|_| f.stream(&label).gen::<u32>()).collect();
        prop_assert!(a.windows(2).all(|w| w[0] == w[1]));
    }
}
