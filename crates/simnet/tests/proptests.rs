//! Property-based tests of the simulation substrate invariants, on the
//! in-tree `pscp-check` harness. Historical proptest regression cases are
//! committed as constants and replayed by plain `#[test]`s below.

use pscp_check::{check, ensure, ensure_eq, Gen};
use pscp_simnet::link::Delivery;
use pscp_simnet::tcp::INIT_CWND_SEGMENTS;
use pscp_simnet::{
    EventQueue, GeoPoint, GeoRect, Link, SimDuration, SimTime, TcpModel, TokenBucket,
};

#[test]
fn event_queue_pops_sorted() {
    check(
        "event_queue_pops_sorted",
        |g: &mut Gen| g.vec(1..100, |g| g.u64(0..1_000_000)),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((at, _)) = q.pop() {
                ensure!(at >= last, "pop out of order: {at} after {last}");
                last = at;
                count += 1;
            }
            ensure_eq!(count, times.len());
            Ok(())
        },
    );
}

#[test]
fn link_deliveries_fifo_and_rate_bounded() {
    check(
        "link_deliveries_fifo_and_rate_bounded",
        |g: &mut Gen| (g.vec(1..80, |g| g.usize(1..3000)), g.f64(0.1..100.0), g.u64(0..10_000)),
        |(sizes, rate_mbps, gap_us)| {
            let mut link = Link::unbounded(rate_mbps * 1e6, SimDuration::from_millis(5));
            let mut t = SimTime::ZERO;
            let mut last_arrival = SimTime::ZERO;
            let mut total_bytes = 0usize;
            for &s in sizes {
                let d = link.enqueue(t, s);
                let Delivery::At(arr) = d else { return Err("unbounded link dropped".into()) };
                // FIFO: arrivals are non-decreasing.
                ensure!(arr >= last_arrival, "FIFO violated");
                last_arrival = arr;
                total_bytes += s;
                t += SimDuration::from_micros(*gap_us);
            }
            // The last arrival cannot beat the physical minimum: total
            // serialization at the link rate plus propagation.
            let min_finish =
                SimDuration::from_secs_f64(total_bytes as f64 * 8.0 / (rate_mbps * 1e6));
            ensure!(
                last_arrival >= SimTime::ZERO + min_finish,
                "arrival {last_arrival} before physical bound"
            );
            Ok(())
        },
    );
}

/// The token-bucket long-run rate invariant, shared by the random sweep and
/// the committed regression cases below.
fn token_bucket_rate_prop(
    (sizes, rate_mbps, burst): &(Vec<usize>, f64, usize),
) -> Result<(), String> {
    let mut tb = TokenBucket::new(rate_mbps * 1e6, *burst);
    let mut last = SimTime::ZERO;
    let mut total = 0usize;
    for &s in sizes {
        let t = tb.release_time(SimTime::ZERO, s);
        ensure!(t >= last, "FIFO violated");
        last = t;
        total += s;
    }
    // Long-run: bytes released by `last` cannot exceed burst + rate*t.
    // Equality holds exactly at the last byte's release; each release
    // additionally rounds its wait onto the µs SimTime grid (up to
    // 0.5 µs of credit per packet at the shaper rate).
    let per_packet_slack = sizes.len() as f64 * rate_mbps * 1e6 / 8.0 * 1e-6;
    let cap = *burst as f64 + rate_mbps * 1e6 / 8.0 * last.as_secs_f64() + per_packet_slack;
    ensure!(total as f64 <= cap + 8.0, "total={total} cap={cap}");
    Ok(())
}

#[test]
fn token_bucket_never_exceeds_rate() {
    check(
        "token_bucket_never_exceeds_rate",
        |g: &mut Gen| {
            (g.vec(2..60, |g| g.usize(1..2000)), g.f64(0.1..50.0), g.usize(1500..100_000))
        },
        token_bucket_rate_prop,
    );
}

// Shrunk counterexamples from the proptest era (`.proptest-regressions`),
// committed as exact inputs so they replay forever.
#[test]
fn token_bucket_regression_burst_8455() {
    let sizes = vec![
        1032, 1105, 560, 346, 1440, 1042, 814, 1092, 974, 1072, 928, 1417, 804, 1200, 1961, 1735,
        764, 1428, 455, 925, 646,
    ];
    token_bucket_rate_prop(&(sizes, 30.349284117100737, 8455)).unwrap();
}

#[test]
fn token_bucket_regression_burst_1988() {
    let sizes = vec![1496, 506, 1077, 1185, 47, 76, 690, 1281, 459, 676, 1694, 551];
    token_bucket_rate_prop(&(sizes, 45.266766059397014, 1988)).unwrap();
}

#[test]
fn tcp_transfer_conserves_bytes_and_orders_chunks() {
    check(
        "tcp_transfer_conserves_bytes_and_orders_chunks",
        |g: &mut Gen| (g.usize(1..2_000_000), g.u64(1..300), g.f64(0.2..200.0)),
        |(bytes, rtt_ms, mbps)| {
            let m = TcpModel::new(1448, SimDuration::from_millis(*rtt_ms), mbps * 1e6);
            let mut cwnd = INIT_CWND_SEGMENTS;
            let s = m.transfer(SimTime::from_secs(1), *bytes, &mut cwnd, true);
            let sum: usize = s.chunks.iter().map(|&(_, n)| n).sum();
            ensure_eq!(sum, *bytes);
            for w in s.chunks.windows(2) {
                ensure!(w[1].0 >= w[0].0, "chunks out of order");
            }
            // Completion bounded below by serialization time.
            let serialize = *bytes as f64 * 8.0 / (mbps * 1e6);
            ensure!(
                s.completion.as_secs_f64() >= 1.0 + serialize * 0.99,
                "completion beat serialization"
            );
            Ok(())
        },
    );
}

#[test]
fn tcp_monotone_in_bytes() {
    check(
        "tcp_monotone_in_bytes",
        |g: &mut Gen| (g.usize(1..100_000), g.usize(1..100_000), g.u64(1..200), g.f64(0.2..100.0)),
        |(small, extra, rtt_ms, mbps)| {
            let m = TcpModel::new(1448, SimDuration::from_millis(*rtt_ms), mbps * 1e6);
            let t1 = m.cold_transfer_completion(SimTime::ZERO, *small);
            let t2 = m.cold_transfer_completion(SimTime::ZERO, small + extra);
            ensure!(t2 >= t1, "more bytes finished earlier: {t2} < {t1}");
            Ok(())
        },
    );
}

#[test]
fn geo_distance_metric_properties() {
    check(
        "geo_distance_metric_properties",
        |g: &mut Gen| {
            (g.f64(-89.0..89.0), g.f64(-179.0..179.0), g.f64(-89.0..89.0), g.f64(-179.0..179.0))
        },
        |(lat1, lon1, lat2, lon2)| {
            let a = GeoPoint::new(*lat1, *lon1);
            let b = GeoPoint::new(*lat2, *lon2);
            let d_ab = a.distance_km(&b);
            let d_ba = b.distance_km(&a);
            ensure!((d_ab - d_ba).abs() < 1e-6, "symmetry: {d_ab} vs {d_ba}");
            ensure!(d_ab >= 0.0, "negative distance");
            ensure!(d_ab <= 20_038.0, "half circumference bound, got {d_ab}");
            Ok(())
        },
    );
}

#[test]
fn quadrants_partition() {
    check(
        "quadrants_partition",
        |g: &mut Gen| {
            (
                g.f64(-80.0..70.0),
                g.f64(-170.0..160.0),
                (g.f64(1.0..20.0), g.f64(1.0..20.0)),
                (g.f64(0.001..0.999), g.f64(0.001..0.999)),
            )
        },
        |(south, west, (dlat, dlon), (plat, plon))| {
            let rect = GeoRect::new(*south, *west, south + dlat, west + dlon);
            let p = GeoPoint::new(south + dlat * plat, west + dlon * plon);
            ensure!(rect.contains(&p), "point outside its own rect");
            let n = rect.quadrants().iter().filter(|q| q.contains(&p)).count();
            ensure_eq!(n, 1);
            Ok(())
        },
    );
}

#[test]
fn rng_streams_reproducible() {
    const LABEL_CHARS: &[char] = &['a', 'b', 'k', 'z', '/'];
    check(
        "rng_streams_reproducible",
        |g: &mut Gen| (g.u64(..), g.string(LABEL_CHARS, 1..=20)),
        |(seed, label)| {
            use pscp_simnet::rng::Rng;
            let f = pscp_simnet::RngFactory::new(*seed);
            let draws: Vec<u32> = (0..4).map(|_| f.stream(label).gen::<u32>()).collect();
            ensure!(draws.windows(2).all(|w| w[0] == w[1]), "stream not reproducible");
            Ok(())
        },
    );
}
