//! Boxplot five-number summaries with Tukey 1.5·IQR whiskers, matching the
//! ggplot2-style boxplots used in Figures 3(b), 4(a) and 4(b) of the paper.

use crate::quantile::quantile_sorted;
use crate::{sorted_copy, validate, StatsError};

/// A boxplot summary of one group of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Number of samples in the group.
    pub n: usize,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lower whisker: smallest sample ≥ q1 − 1.5·IQR.
    pub whisker_low: f64,
    /// Upper whisker: largest sample ≤ q3 + 1.5·IQR.
    pub whisker_high: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxplotSummary {
    /// Computes the summary of `data`.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        validate(data)?;
        let sorted = sorted_copy(data);
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low =
            *sorted.iter().find(|&&x| x >= lo_fence).expect("q1 itself is within the lower fence");
        let whisker_high = *sorted
            .iter()
            .rev()
            .find(|&&x| x <= hi_fence)
            .expect("q3 itself is within the upper fence");
        let outliers = sorted.iter().copied().filter(|&x| x < lo_fence || x > hi_fence).collect();
        Ok(BoxplotSummary { n: sorted.len(), q1, median, q3, whisker_low, whisker_high, outliers })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// A labeled series of boxplots, e.g. one per bandwidth limit.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSeries {
    /// (group label, summary) pairs in presentation order.
    pub groups: Vec<(String, BoxplotSummary)>,
}

impl BoxplotSeries {
    /// Builds a series from labeled groups; groups with no data are skipped.
    pub fn from_groups<'a, I>(groups: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a [f64])>,
    {
        let groups = groups
            .into_iter()
            .filter_map(|(label, data)| {
                BoxplotSummary::of(data).ok().map(|s| (label.to_string(), s))
            })
            .collect();
        BoxplotSeries { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_grid() {
        let data: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        let b = BoxplotSummary::of(&data).unwrap();
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.n, 11);
    }

    #[test]
    fn no_outliers_whiskers_are_min_max() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxplotSummary::of(&data).unwrap();
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn detects_high_outlier() {
        let data = [1.0, 2.0, 3.0, 4.0, 100.0];
        let b = BoxplotSummary::of(&data).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert_eq!(b.whisker_high, 4.0);
    }

    #[test]
    fn detects_low_outlier() {
        let data = [-100.0, 10.0, 11.0, 12.0, 13.0];
        let b = BoxplotSummary::of(&data).unwrap();
        assert_eq!(b.outliers, vec![-100.0]);
        assert_eq!(b.whisker_low, 10.0);
    }

    #[test]
    fn constant_data_degenerate_box() {
        let b = BoxplotSummary::of(&[7.0; 10]).unwrap();
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_low, 7.0);
        assert_eq!(b.whisker_high, 7.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn series_skips_empty_groups() {
        let a = [1.0, 2.0];
        let empty: [f64; 0] = [];
        let s = BoxplotSeries::from_groups(vec![("a", &a[..]), ("b", &empty[..])]);
        assert_eq!(s.groups.len(), 1);
        assert_eq!(s.groups[0].0, "a");
    }

    #[test]
    fn whiskers_bound_box() {
        let data = [0.1, 0.5, 0.9, 1.5, 2.0, 2.5, 9.0];
        let b = BoxplotSummary::of(&data).unwrap();
        assert!(b.whisker_low <= b.q1);
        assert!(b.whisker_high >= b.q3);
        assert!(b.q1 <= b.median && b.median <= b.q3);
    }
}
