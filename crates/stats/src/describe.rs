//! Descriptive statistics with numerically stable accumulation.

use crate::{validate, StatsError};

/// Summary of a univariate sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Description {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n-1 denominator); 0 for n == 1.
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of all values.
    pub sum: f64,
}

impl Description {
    /// Computes descriptive statistics over `data` using Welford's algorithm,
    /// which avoids the catastrophic cancellation of the naive sum-of-squares
    /// formula.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        validate(data)?;
        let mut acc = Accumulator::new();
        for &x in data {
            acc.push(x);
        }
        Ok(acc.finish().expect("non-empty by validate"))
    }
}

/// Streaming accumulator (Welford) so callers can describe data without
/// materializing it, e.g. per-packet statistics during a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Running mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Finalizes into a [`Description`]; `None` if no samples were pushed.
    pub fn finish(&self) -> Option<Description> {
        if self.n == 0 {
            return None;
        }
        let variance = if self.n > 1 { self.m2 / (self.n - 1) as f64 } else { 0.0 };
        Some(Description {
            n: self.n,
            mean: self.mean,
            variance,
            std_dev: variance.sqrt(),
            min: self.min,
            max: self.max,
            sum: self.sum,
        })
    }
}

/// Arithmetic mean of `data`.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    Ok(Description::of(data)?.mean)
}

/// Unbiased sample variance of `data`; requires at least two samples.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    validate(data)?;
    if data.len() < 2 {
        return Err(StatsError::InsufficientSamples { required: 2, actual: data.len() });
    }
    Ok(Description::of(data)?.variance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_set() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
    }

    #[test]
    fn variance_of_known_set() {
        // variance of {2,4,4,4,5,5,7,9} is 4.571428... (sample, n-1)
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_requires_two_samples() {
        assert!(matches!(
            variance(&[1.0]),
            Err(StatsError::InsufficientSamples { required: 2, actual: 1 })
        ));
    }

    #[test]
    fn description_min_max_sum() {
        let d = Description::of(&[3.0, -1.0, 7.0]).unwrap();
        assert_eq!(d.min, -1.0);
        assert_eq!(d.max, 7.0);
        assert_eq!(d.sum, 9.0);
        assert_eq!(d.n, 3);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let d = Description::of(&[5.0]).unwrap();
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.std_dev, 0.0);
    }

    #[test]
    fn welford_is_stable_for_large_offset() {
        // Naive sum-of-squares loses all precision here; Welford must not.
        let data: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 10) as f64).collect();
        let v = variance(&data).unwrap();
        let expected = variance(&data.iter().map(|x| x - 1e9).collect::<Vec<_>>()).unwrap();
        assert!((v - expected).abs() < 1e-6, "v={v} expected={expected}");
    }

    #[test]
    fn accumulator_matches_batch() {
        let data = [0.5, 1.5, 2.5, 10.0];
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.push(x);
        }
        let streamed = acc.finish().unwrap();
        let batch = Description::of(&data).unwrap();
        assert!((streamed.mean - batch.mean).abs() < 1e-12);
        assert!((streamed.variance - batch.variance).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty_finishes_none() {
        assert!(Accumulator::new().finish().is_none());
        assert_eq!(Accumulator::new().mean(), None);
    }
}
