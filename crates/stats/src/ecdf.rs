//! Empirical cumulative distribution functions.
//!
//! Most figures in the paper are CDFs (Fig 1b, 2a, 3a, 5, 6a). [`Ecdf`] holds
//! the sorted sample and evaluates `F(x) = #{xi <= x} / n`; it can also emit
//! the step points needed to plot the curve.

use crate::{sorted_copy, validate, StatsError};

/// An empirical CDF over a fixed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample; rejects empty or NaN input.
    pub fn new(data: &[f64]) -> Result<Self, StatsError> {
        validate(data)?;
        Ok(Ecdf { sorted: sorted_copy(data) })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x)`: the fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x on a sorted slice.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: smallest sample value v with `F(v) >= p`.
    pub fn inverse(&self, p: f64) -> f64 {
        let n = self.sorted.len();
        if p <= 0.0 {
            return self.sorted[0];
        }
        let k = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Iterates the `(x, F(x))` plot points without allocating: one per
    /// distinct sample value, with F evaluated after all duplicates of
    /// that value. Callers that only walk the curve (renderers, KS-style
    /// scans) should prefer this over [`Ecdf::steps`].
    pub fn steps_iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        let mut i = 0;
        std::iter::from_fn(move || {
            if i >= self.sorted.len() {
                return None;
            }
            let v = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == v {
                j += 1;
            }
            i = j;
            Some((v, j as f64 / n))
        })
    }

    /// Emits `(x, F(x))` plot points as a vector; see [`Ecdf::steps_iter`]
    /// for the allocation-free variant.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        self.steps_iter().collect()
    }

    /// Resamples the curve at `k` evenly spaced probabilities in (0, 1], which
    /// is what the figure renderer uses to print a fixed-size series.
    ///
    /// Edge cases: `k = 0` yields an empty series (nothing to plot, not a
    /// panic); `k ≥ len` simply repeats sample values across adjacent
    /// probabilities — with a single sample every point is that sample.
    pub fn sampled(&self, k: usize) -> Vec<(f64, f64)> {
        (1..=k)
            .map(|i| {
                let p = i as f64 / k as f64;
                (self.inverse(p), p)
            })
            .collect()
    }

    /// Two-sample Kolmogorov-Smirnov statistic: max |F1(x) - F2(x)|.
    ///
    /// Used in tests to check that regenerated distributions match their
    /// calibration targets in shape.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(data: &[f64]) -> Ecdf {
        Ecdf::new(data).unwrap()
    }

    #[test]
    fn eval_basic() {
        let e = ecdf(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_with_duplicates() {
        let e = ecdf(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(1.5), 0.75);
        assert_eq!(e.eval(2.0), 1.0);
    }

    #[test]
    fn inverse_round_trip() {
        let e = ecdf(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.5), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
        assert_eq!(e.inverse(0.0), 10.0);
    }

    #[test]
    fn steps_collapse_duplicates() {
        let e = ecdf(&[1.0, 1.0, 2.0]);
        assert_eq!(e.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn sampled_is_monotone() {
        let e = ecdf(&[0.4, 0.1, 0.9, 0.5, 0.2, 0.7]);
        let pts = e.sampled(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn sampled_edge_cases() {
        let single = ecdf(&[42.0]);
        assert_eq!(single.sampled(0), vec![], "k=0 is an empty series, not a panic");
        assert_eq!(single.sampled(1), vec![(42.0, 1.0)]);
        assert_eq!(single.sampled(3), vec![(42.0, 1.0 / 3.0), (42.0, 2.0 / 3.0), (42.0, 1.0)]);
        let e = ecdf(&[1.0, 2.0]);
        let over = e.sampled(5); // k >= len: values repeat, probabilities advance
        assert_eq!(over.len(), 5);
        assert_eq!(over.first().unwrap().0, 1.0);
        assert_eq!(over.last().unwrap(), &(2.0, 1.0));
    }

    #[test]
    fn steps_iter_matches_steps_without_allocating_points() {
        let e = ecdf(&[3.0, 1.0, 1.0, 2.0, 3.0, 3.0]);
        let collected: Vec<(f64, f64)> = e.steps_iter().collect();
        assert_eq!(collected, e.steps());
        assert_eq!(e.steps_iter().count(), 3, "one step per distinct value");
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = ecdf(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&a.clone()), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = ecdf(&[1.0, 2.0]);
        let b = ecdf(&[10.0, 20.0]);
        assert_eq!(a.ks_statistic(&b), 1.0);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[f64::NAN]).is_err());
    }
}
