//! Histograms with linear or logarithmic binning.
//!
//! Several paper figures use log-scaled x axes (Fig 2a durations, Fig 5
//! latencies); log binning mirrors that presentation.

use crate::{validate, StatsError};

/// Bin edge layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Binning {
    /// `count` equal-width bins over [lo, hi].
    Linear {
        /// Lowest edge.
        lo: f64,
        /// Highest edge.
        hi: f64,
        /// Number of bins.
        count: usize,
    },
    /// `count` bins whose edges are geometric between lo and hi (lo > 0).
    Log {
        /// Lowest edge (must be positive).
        lo: f64,
        /// Highest edge.
        hi: f64,
        /// Number of bins.
        count: usize,
    },
}

/// A populated histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `data` with the given binning.
    pub fn new(data: &[f64], binning: Binning) -> Result<Self, StatsError> {
        validate(data)?;
        let edges = match binning {
            Binning::Linear { lo, hi, count } => {
                if hi <= lo || hi.is_nan() || lo.is_nan() || count == 0 {
                    return Err(StatsError::InvalidParameter("need hi > lo and count > 0"));
                }
                (0..=count).map(|i| lo + (hi - lo) * i as f64 / count as f64).collect::<Vec<_>>()
            }
            Binning::Log { lo, hi, count } => {
                if hi <= lo || hi.is_nan() || lo <= 0.0 || count == 0 {
                    return Err(StatsError::InvalidParameter(
                        "log binning needs 0 < lo < hi and count > 0",
                    ));
                }
                let (llo, lhi) = (lo.ln(), hi.ln());
                (0..=count)
                    .map(|i| (llo + (lhi - llo) * i as f64 / count as f64).exp())
                    .collect::<Vec<_>>()
            }
        };
        let mut h =
            Histogram { counts: vec![0; edges.len() - 1], edges, below: 0, above: 0, total: 0 };
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    fn add(&mut self, x: f64) {
        self.total += 1;
        let first = self.edges[0];
        let last = *self.edges.last().expect("edges non-empty");
        if x < first {
            self.below += 1;
            return;
        }
        if x > last {
            self.above += 1;
            return;
        }
        // partition_point finds the first edge > x; the bin is the one before.
        let i = self.edges.partition_point(|&e| e <= x);
        let nbins = self.counts.len();
        let bin = if i == self.edges.len() { nbins - 1 } else { i - 1 };
        self.counts[bin.min(nbins - 1)] += 1;
    }

    /// Bin edges (length = bins + 1).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below the first edge.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Count of samples above the last edge.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total samples seen (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin (center, density) pairs normalizing to unit total mass of the
    /// in-range samples.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let in_range: u64 = self.counts.iter().sum();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = self.edges[i];
                let hi = self.edges[i + 1];
                let width = hi - lo;
                let center = 0.5 * (lo + hi);
                let d = if in_range == 0 { 0.0 } else { c as f64 / in_range as f64 / width };
                (center, d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_counts() {
        let data = [0.5, 1.5, 1.7, 2.5, 3.5];
        let h = Histogram::new(&data, Binning::Linear { lo: 0.0, hi: 4.0, count: 4 }).unwrap();
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn boundary_goes_to_right_bin_except_last() {
        let data = [0.0, 1.0, 2.0];
        let h = Histogram::new(&data, Binning::Linear { lo: 0.0, hi: 2.0, count: 2 }).unwrap();
        // 0.0 -> bin 0, 1.0 -> bin 1, 2.0 (== last edge) -> last bin.
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let data = [-1.0, 0.5, 10.0];
        let h = Histogram::new(&data, Binning::Linear { lo: 0.0, hi: 1.0, count: 1 }).unwrap();
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts(), &[1]);
    }

    #[test]
    fn log_binning_edges_geometric() {
        let h = Histogram::new(&[1.0], Binning::Log { lo: 1.0, hi: 100.0, count: 2 }).unwrap();
        let e = h.edges();
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] - 10.0).abs() < 1e-9);
        assert!((e[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_binning_rejects_nonpositive_lo() {
        assert!(Histogram::new(&[1.0], Binning::Log { lo: 0.0, hi: 1.0, count: 2 }).is_err());
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 25.0).collect();
        let h = Histogram::new(&data, Binning::Linear { lo: 0.0, hi: 4.0, count: 8 }).unwrap();
        let mass: f64 = h
            .density()
            .iter()
            .zip(h.edges().windows(2))
            .map(|(&(_, d), e)| d * (e[1] - e[0]))
            .sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }
}
