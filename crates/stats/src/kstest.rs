//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used to compare regenerated distributions against calibration targets
//! (e.g. Fig 6a bitrate CDFs across protocols): the statistic is the
//! maximum ECDF gap; the p-value uses the asymptotic Kolmogorov
//! distribution with the standard effective-sample-size correction.

use crate::ecdf::Ecdf;
use crate::StatsError;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F1 - F2|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value.
    pub p_value: f64,
    /// Effective sample size `n·m / (n + m)`.
    pub effective_n: f64,
}

impl KsResult {
    /// Whether the distributions differ significantly at `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the two-sample KS test.
pub fn ks_test(a: &[f64], b: &[f64]) -> Result<KsResult, StatsError> {
    let ea = Ecdf::new(a)?;
    let eb = Ecdf::new(b)?;
    let d = ea.ks_statistic(&eb);
    let n = a.len() as f64;
    let m = b.len() as f64;
    let effective_n = n * m / (n + m);
    let p_value = kolmogorov_sf(d * (effective_n.sqrt() + 0.12 + 0.11 / effective_n.sqrt()));
    Ok(KsResult { statistic: d, p_value: p_value.clamp(0.0, 1.0), effective_n })
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Kendall's rank correlation τ-b (handles ties), an alternative to
/// Pearson/Spearman for the §4 duration↔popularity question.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    crate::validate(x)?;
    crate::validate(y)?;
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter("paired samples must have equal length"));
    }
    let n = x.len();
    if n < 2 {
        return Err(StatsError::InsufficientSamples { required: 2, actual: n });
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            // τ-b accounting: pairs tied in x count toward the x tie
            // correction regardless of y (and vice versa); only fully
            // untied pairs are concordant/discordant.
            if dx == 0.0 {
                ties_x += 1;
            }
            if dy == 0.0 {
                ties_y += 1;
            }
            if dx != 0.0 && dy != 0.0 {
                if dx * dy > 0.0 {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::InvalidParameter("all pairs tied"));
    }
    Ok((concordant - discordant) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_high_p() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = ks_test(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn disjoint_samples_tiny_p() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 1000.0 + i as f64).collect();
        let r = ks_test(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
        assert!(r.p_value < 1e-6);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn shifted_distributions_detected_with_enough_samples() {
        // Two uniform grids shifted by half a width.
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.25 + i as f64 / 200.0).collect();
        let r = ks_test(&a, &b).unwrap();
        assert!((r.statistic - 0.25).abs() < 0.02);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn small_same_distribution_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 3.5, 4.5, 5.5];
        let r = ks_test(&a, &b).unwrap();
        assert!(!r.significant_at(0.05), "p={}", r.p_value);
    }

    #[test]
    fn kolmogorov_sf_reference_points() {
        // Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.002);
        // Q(1.63) ≈ 0.010.
        assert!((kolmogorov_sf(1.63) - 0.010).abs() < 0.002);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
    }

    #[test]
    fn kendall_perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [40.0, 30.0, 20.0, 10.0];
        assert_eq!(kendall_tau(&x, &up).unwrap(), 1.0);
        assert_eq!(kendall_tau(&x, &down).unwrap(), -1.0);
    }

    #[test]
    fn kendall_with_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!(tau > 0.7 && tau <= 1.0, "tau={tau}");
    }

    #[test]
    fn kendall_uncorrelated_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let tau = kendall_tau(&x, &y).unwrap();
        assert!(tau.abs() < 0.5, "tau={tau}");
    }

    #[test]
    fn kendall_errors() {
        assert!(kendall_tau(&[1.0], &[1.0]).is_err());
        assert!(kendall_tau(&[1.0, 2.0], &[1.0]).is_err());
        assert!(kendall_tau(&[1.0, 1.0], &[2.0, 2.0]).is_err());
    }
}
