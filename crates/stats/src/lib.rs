#![warn(missing_docs)]

//! Statistics toolkit for the Periscope reproduction.
//!
//! The paper's analysis relies on a small set of statistical tools: empirical
//! CDFs (Figures 1, 2a, 3a, 5, 6a), boxplots with 1.5·IQR whiskers
//! (Figures 3b, 4a, 4b), Welch's t-test (device comparison in §5), Pearson
//! correlation (duration vs. popularity in §4), and plain descriptive
//! statistics. This crate implements all of them from scratch, with no
//! dependencies, so the analysis pipeline is self-contained and auditable.
//!
//! All functions operate on `f64` slices; NaN inputs are rejected explicitly
//! (an NaN in a latency dataset is a bug upstream, not a value to sort).

pub mod boxplot;
pub mod describe;
pub mod ecdf;
pub mod histogram;
pub mod kstest;
pub mod quantile;
pub mod regression;
pub mod sketch;
pub mod special;
pub mod table;
pub mod ttest;

pub use boxplot::BoxplotSummary;
pub use describe::Description;
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use kstest::{kendall_tau, ks_test, KsResult};
pub use quantile::{median, quantile};
pub use sketch::{Moments, QuantileSketch, TopK};
pub use ttest::{welch_t_test, welch_t_test_moments, WelchResult};

/// Error type for statistical computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty where at least one sample is required.
    EmptyInput,
    /// The input contained a NaN value.
    NanInput,
    /// Not enough samples for the requested statistic (e.g. variance of one).
    InsufficientSamples {
        /// Minimum samples the statistic needs.
        required: usize,
        /// Samples actually provided.
        actual: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "empty input"),
            StatsError::NanInput => write!(f, "input contains NaN"),
            StatsError::InsufficientSamples { required, actual } => {
                write!(f, "need at least {required} samples, got {actual}")
            }
            StatsError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validates that a sample set is non-empty and NaN-free.
pub(crate) fn validate(data: &[f64]) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanInput);
    }
    Ok(())
}

/// Returns a sorted copy of `data`.
///
/// Sorting is total because `validate` guarantees no NaNs at call sites.
pub(crate) fn sorted_copy(data: &[f64]) -> Vec<f64> {
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected by validate"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn validate_rejects_nan() {
        assert_eq!(validate(&[1.0, f64::NAN]), Err(StatsError::NanInput));
    }

    #[test]
    fn validate_accepts_normal() {
        assert!(validate(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn sorted_copy_sorts() {
        assert_eq!(sorted_copy(&[3.0, 1.0, 2.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn error_display() {
        assert_eq!(StatsError::EmptyInput.to_string(), "empty input");
        assert_eq!(
            StatsError::InsufficientSamples { required: 2, actual: 1 }.to_string(),
            "need at least 2 samples, got 1"
        );
    }
}
