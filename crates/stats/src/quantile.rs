//! Quantile estimation (R type-7, the default of R/numpy).
//!
//! Type-7 linearly interpolates between order statistics: for probability
//! `p` and `n` samples the index is `h = (n - 1) * p`, and the estimate is
//! `x[floor(h)] + (h - floor(h)) * (x[floor(h)+1] - x[floor(h)])`.

use crate::{sorted_copy, validate, StatsError};

/// Computes the `p`-quantile (0 ≤ p ≤ 1) of `data` using type-7 interpolation.
pub fn quantile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    validate(data)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter("p must be in [0, 1]"));
    }
    let sorted = sorted_copy(data);
    Ok(quantile_sorted(&sorted, p))
}

/// Computes the `p`-quantile assuming `sorted` is already ascending.
///
/// Panics on empty input; callers should validate first.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Computes the median of `data`.
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    quantile(data, 0.5)
}

/// Computes the interquartile range (Q3 - Q1) of `data`.
pub fn iqr(data: &[f64]) -> Result<f64, StatsError> {
    validate(data)?;
    let sorted = sorted_copy(data);
    Ok(quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25))
}

/// Computes several quantiles in one pass over the sort.
pub fn quantiles(data: &[f64], ps: &[f64]) -> Result<Vec<f64>, StatsError> {
    validate(data)?;
    for &p in ps {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter("p must be in [0, 1]"));
        }
    }
    let sorted = sorted_copy(data);
    Ok(ps.iter().map(|&p| quantile_sorted(&sorted, p)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
    }

    #[test]
    fn median_even_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let data = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_single_sample() {
        assert_eq!(quantile(&[42.0], 0.3).unwrap(), 42.0);
    }

    #[test]
    fn quantile_matches_r_type7() {
        // R: quantile(c(1,2,3,4,5,6,7,8,9,10), 0.25) == 3.25
        let data: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let q = quantile(&data, 0.25).unwrap();
        assert!((q - 3.25).abs() < 1e-12, "got {q}");
        let q = quantile(&data, 0.75).unwrap();
        assert!((q - 7.75).abs() < 1e-12, "got {q}");
    }

    #[test]
    fn quantile_rejects_out_of_range_p() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let data: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert!((iqr(&data).unwrap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let data = [2.0, 8.0, 4.0, 6.0];
        let qs = quantiles(&data, &[0.25, 0.5, 0.75]).unwrap();
        assert_eq!(qs[1], median(&data).unwrap());
        assert_eq!(qs[0], quantile(&data, 0.25).unwrap());
        assert_eq!(qs[2], quantile(&data, 0.75).unwrap());
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        let data = [0.3, 1.2, 0.9, 5.5, 2.2, 2.2, 0.01];
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&data, i as f64 / 20.0).unwrap();
            assert!(q >= last);
            last = q;
        }
    }
}
