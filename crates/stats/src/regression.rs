//! Correlation and simple linear regression.
//!
//! §4 of the paper: "the popularity is only very weakly correlated with its
//! duration" — experiment E4 checks this with Pearson and Spearman
//! correlation over the crawled broadcast dataset.

use crate::{validate, StatsError};

/// Pearson product-moment correlation coefficient of paired samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    paired_validate(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InvalidParameter("zero variance in correlation input"));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson on mid-ranks (ties averaged).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    paired_validate(x, y)?;
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Ordinary least squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Fits a least-squares line through the paired samples.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, StatsError> {
    paired_validate(x, y)?;
    if x.len() < 2 {
        return Err(StatsError::InsufficientSamples { required: 2, actual: x.len() });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxy += (xi - mx) * (yi - my);
        sxx += (xi - mx) * (xi - mx);
        syy += (yi - my) * (yi - my);
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter("x has zero variance"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Ok(LinearFit { slope, intercept, r_squared })
}

fn paired_validate(x: &[f64], y: &[f64]) -> Result<(), StatsError> {
    validate(x)?;
    validate(y)?;
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter("paired samples must have equal length"));
    }
    Ok(())
}

/// Mid-ranks of a sample (1-based, ties get the average of their positions).
fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN rejected"));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j < idx.len() && data[idx[j]] == data[idx[i]] {
            j += 1;
        }
        // Average rank over the tie block [i, j).
        let avg = (i + j + 1) as f64 / 2.0;
        for &k in &idx[i..j] {
            out[k] = avg;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 0.5);
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pearson_rejects_length_mismatch() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_matches_pearson_squared() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let f = linear_fit(&x, &y).unwrap();
        let r = pearson(&x, &y).unwrap();
        assert!((f.r_squared - r * r).abs() < 1e-12);
    }
}
