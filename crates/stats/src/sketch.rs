//! Deterministic mergeable streaming summaries (DESIGN.md §11).
//!
//! Three constant-memory structures back the streaming telemetry pipeline:
//!
//! * [`QuantileSketch`] — a fixed-policy log-linear bucket sketch over a
//!   `u64` integer domain (microseconds, ppm, bytes). Merging adds `u64`
//!   bucket counts, so `merge` is exactly associative *and* commutative:
//!   folding per-worker sketches in plan order is bit-identical to a
//!   serial fold, the same discipline `pscp-obs` trace absorption uses.
//! * [`Moments`] — streaming count/mean/M2 (Welford), mergeable with
//!   Chan's parallel formula; enough to drive Welch's t-test without ever
//!   materializing a sample vector.
//! * [`TopK`] — space-saving heavy-hitter tracking with fully
//!   deterministic tie-breaks, for phase/outlier attribution.
//!
//! None of these structures allocates per observation once warmed: memory
//! is O(buckets), O(1) and O(k) respectively, independent of stream
//! length — the property that lets QoE telemetry run at 100K+ sessions
//! without holding samples.

/// Sub-bucket resolution: 2^7 = 128 sub-buckets per octave, giving a
/// worst-case relative value error of `1/128 < 1%` for any value above
/// the exact region.
const SUB_BITS: u32 = 7;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Values below `2·SUB` get one bucket each (exact small-value region).
const EXACT_LIMIT: u64 = 2 * SUB;

/// A deterministic mergeable quantile sketch over `u64` values.
///
/// Log-linear bucketing (HDR-histogram style): values below
/// [`EXACT_LIMIT`] are stored exactly; above it, each power-of-two octave
/// is split into 128 sub-buckets, bounding the relative width of any
/// bucket — and therefore the value error of any reported quantile — to
/// under 1%. The bucket policy is a pure function of the value, fixed at
/// compile time, so two sketches built from the same multiset of values
/// are bit-identical regardless of insertion or merge order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Dense per-bucket counts, grown lazily to the highest touched index.
    counts: Vec<u64>,
    /// Number of observations.
    count: u64,
    /// Sum of observed values (saturating).
    sum: u64,
    /// Smallest observed value (meaningless when `count == 0`).
    min: u64,
    /// Largest observed value.
    max: u64,
}

/// Bucket index of a value under the fixed log-linear policy.
fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
    let octave = msb - SUB_BITS as u64; // >= 1
    let offset = (v >> (msb - SUB_BITS as u64)) - SUB;
    (EXACT_LIMIT + (octave - 1) * SUB + offset) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `i` — the inverse of
/// [`bucket_index`]. Public (via [`QuantileSketch::bucket_bounds`]) so
/// property tests can pin the bracket guarantee.
fn bucket_range(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < EXACT_LIMIT {
        return (i, i);
    }
    let octave = (i - EXACT_LIMIT) / SUB + 1;
    let offset = (i - EXACT_LIMIT) % SUB;
    let msb = octave + SUB_BITS as u64;
    let width = 1u64 << (msb - SUB_BITS as u64);
    let lower = (1u64 << msb) + offset * width;
    // `width - 1` first: the top bucket's `lower + width` is 2^64 exactly.
    (lower, lower + (width - 1))
}

impl QuantileSketch {
    /// An empty sketch.
    pub const fn new() -> QuantileSketch {
        QuantileSketch { counts: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` identical observations.
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another sketch into this one. Pure `u64` bucket addition:
    /// exactly associative and commutative, so any merge tree over the
    /// same leaf sketches produces bit-identical state.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `p`-quantile (upper bucket edge), using the same rank
    /// convention as `Ecdf::inverse`: the reported value `q` satisfies
    /// `#{x ≤ q} ≥ ceil(p·n)`, and `q` overestimates the exact quantile
    /// by at most one bucket width (< 1% relative). `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let (_, upper) = bucket_range(i);
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Inclusive value bounds of the bucket that `value` lands in — the
    /// sketch's resolution at that magnitude.
    pub fn bucket_bounds(value: u64) -> (u64, u64) {
        bucket_range(bucket_index(value))
    }

    /// Observations strictly greater than `threshold`, by bucket: counts
    /// every bucket whose whole range lies above `threshold`, so values
    /// sharing the threshold's bucket are counted as *not* greater
    /// (under-counting by at most one bucket width, < 1% in value). A pure
    /// function of the bucket counts, so it merges exactly like the sketch
    /// itself — the burn-rate evaluator's "bad observation" primitive.
    pub fn count_gt(&self, threshold: u64) -> u64 {
        let first_above = bucket_index(threshold) + 1;
        self.counts.iter().skip(first_above).sum()
    }

    /// Heap + inline memory footprint in bytes. Bounded by the bucket
    /// policy (≤ ~7.5K buckets over the full `u64` range), independent of
    /// how many values were observed. Measured over the bucket array's
    /// *extent* (highest touched index), not the allocator's capacity:
    /// the extent is a pure function of the observed value set, so equal
    /// sketches report equal footprints no matter what observe/merge path
    /// built them — snapshots that embed this number stay byte-identical
    /// across shard and thread counts.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<QuantileSketch>() + self.counts.len() * 8
    }
}

/// Streaming count/mean/M2 (Welford), mergeable with Chan's formula.
///
/// Carries exactly the sufficient statistics Welch's t-test needs
/// (`n`, `mean`, sample variance), so device comparisons can run over
/// streams without sample vectors. Merging is deterministic for a fixed
/// merge order (floats are not associative); the pipeline merges in plan
/// order, matching the trace-absorption discipline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub const fn new() -> Moments {
        Moments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation (NaN is ignored — a NaN in a telemetry
    /// stream is an upstream bug, and poisoning the whole summary would
    /// hide every later sample).
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one (Chan et al.'s parallel
    /// update).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no values were observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean (0 when empty, never NaN).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance, `M2 / (n-1)` (`None` below two samples).
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| (self.m2 / (self.n as f64 - 1.0)).max(0.0))
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Deterministic space-saving top-K heavy hitters over string keys.
///
/// Classic space-saving guarantees `true ≤ estimate ≤ true + err` per
/// key. Every tie in eviction and reporting is broken by the key's
/// lexicographic order, so the tracked set and the reported ranking are
/// pure functions of the observation multiset and order — never of hash
/// iteration or thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopK {
    k: usize,
    /// `(key, estimated count, overestimation error)`, unordered.
    entries: Vec<(String, u64, u64)>,
}

impl TopK {
    /// A tracker keeping at most `k` keys (`k ≥ 1`).
    pub fn new(k: usize) -> TopK {
        TopK { k: k.max(1), entries: Vec::new() }
    }

    /// Records `by` occurrences of `key`.
    pub fn observe(&mut self, key: &str, by: u64) {
        if by == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 += by;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push((key.to_string(), by, 0));
            return;
        }
        // Evict the smallest-count entry; among ties, the lexicographically
        // greatest key goes (a fixed rule — any rule works, it just must
        // not depend on insertion history beyond the counts themselves).
        let evict = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("k >= 1");
        let floor = self.entries[evict].1;
        self.entries[evict] = (key.to_string(), floor + by, floor);
    }

    /// Folds another tracker into this one: union the estimates, then
    /// keep the top `k` by `(count desc, key asc)`. Exact (and therefore
    /// order-independent) whenever the union fits in `k`; beyond that the
    /// usual space-saving overestimation applies.
    pub fn merge(&mut self, other: &TopK) {
        for (key, count, err) in &other.entries {
            match self.entries.iter_mut().find(|e| e.0 == *key) {
                Some(e) => {
                    e.1 += count;
                    e.2 += err;
                }
                None => self.entries.push((key.clone(), *count, *err)),
            }
        }
        self.entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.entries.truncate(self.k);
    }

    /// The tracked keys, highest estimate first (ties by key):
    /// `(key, estimated count, overestimation error)`.
    pub fn top(&self) -> Vec<(String, u64, u64)> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of tracked keys (≤ k).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap + inline footprint in bytes (string *lengths*,
    /// not capacities, so equal top-k states report equal footprints
    /// regardless of how they were built — see
    /// [`QuantileSketch::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<TopK>()
            + self
                .entries
                .iter()
                .map(|e| std::mem::size_of::<(String, u64, u64)>() + e.0.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..EXACT_LIMIT {
            s.observe(v);
        }
        for p in [0.01, 0.25, 0.5, 0.75, 1.0] {
            let q = s.quantile(p).unwrap();
            let rank = ((p * s.count() as f64).ceil() as u64).clamp(1, s.count());
            assert_eq!(q, rank - 1, "small values are stored exactly");
        }
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(EXACT_LIMIT - 1));
    }

    #[test]
    fn bucket_index_and_range_are_inverse_and_contiguous() {
        let mut prev_upper: Option<u64> = None;
        for i in 0..2000usize {
            let (lo, hi) = bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "buckets tile the domain");
            }
            prev_upper = Some(hi);
        }
        // The very top bucket's upper edge is exactly u64::MAX.
        let (lo, hi) = bucket_range(bucket_index(u64::MAX));
        assert!(lo <= hi);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [300u64, 1_000, 65_537, 1_000_000, 123_456_789, u64::MAX / 3] {
            let (lo, hi) = QuantileSketch::bucket_bounds(v);
            assert!((hi - lo) as f64 <= lo as f64 / SUB as f64 + 1.0, "width ≤ lower/128");
        }
    }

    #[test]
    fn merge_is_bit_identical_to_serial_fold() {
        let values: Vec<u64> = (0..5000u64).map(|i| i * i % 777_777).collect();
        let mut serial = QuantileSketch::new();
        for &v in &values {
            serial.observe(v);
        }
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for chunk in values.chunks(613) {
            let mut s = QuantileSketch::new();
            for &v in chunk {
                s.observe(v);
            }
            parts.push(s);
        }
        let mut folded = QuantileSketch::new();
        for p in &parts {
            folded.merge(p);
        }
        assert_eq!(serial, folded);
        // Reverse merge order: commutativity.
        let mut rev = QuantileSketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(serial, rev);
    }

    #[test]
    fn quantile_brackets_the_exact_rank() {
        let values: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 1_000_000).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.observe(v);
        }
        for p in [0.1, 0.5, 0.9, 0.99] {
            let q = s.quantile(p).unwrap();
            let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let covered = sorted.partition_point(|&v| v <= q);
            assert!(covered >= rank, "q must cover the target rank");
            let exact = sorted[rank - 1];
            let (_, exact_upper) = QuantileSketch::bucket_bounds(exact);
            assert!(q <= exact_upper, "q at most one bucket above the exact quantile");
        }
    }

    #[test]
    fn empty_sketch_behaves() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        let mut t = QuantileSketch::new();
        t.merge(&s);
        assert!(t.is_empty());
    }

    #[test]
    fn memory_is_constant_in_stream_length() {
        let mut s = QuantileSketch::new();
        // Spread across the whole 60s-of-microseconds domain, so the first
        // pass establishes the full bucket extent the domain needs.
        for i in 0..100_000u64 {
            s.observe((i * 601) % 60_000_000);
        }
        // 60s-of-microseconds domain: a few thousand buckets at most.
        assert!(s.memory_bytes() < 64 * 1024, "footprint {} too big", s.memory_bytes());
        let before = s.memory_bytes();
        for i in 0..100_000u64 {
            s.observe((i * 31) % 60_000_000);
        }
        assert_eq!(s.memory_bytes(), before, "more observations, same memory");
    }

    #[test]
    fn moments_match_naive_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &data {
            m.observe(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0);
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(m.count(), 8);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn moments_merge_matches_whole() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0).collect();
        let mut whole = Moments::new();
        for &x in &data {
            whole.observe(x);
        }
        let mut merged = Moments::new();
        for chunk in data.chunks(77) {
            let mut part = Moments::new();
            for &x in chunk {
                part.observe(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn moments_ignore_nan() {
        let mut m = Moments::new();
        m.observe(1.0);
        m.observe(f64::NAN);
        m.observe(3.0);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn topk_exact_when_keys_fit() {
        let mut t = TopK::new(4);
        for (key, n) in [("hls.segments", 10), ("rtmp.buffering", 30), ("api.request", 5)] {
            t.observe(key, n);
        }
        let top = t.top();
        assert_eq!(top[0], ("rtmp.buffering".to_string(), 30, 0));
        assert_eq!(top[1], ("hls.segments".to_string(), 10, 0));
        assert_eq!(top[2], ("api.request".to_string(), 5, 0));
    }

    #[test]
    fn topk_eviction_keeps_overestimate_bound() {
        let mut t = TopK::new(2);
        t.observe("a", 10);
        t.observe("b", 5);
        t.observe("c", 1); // evicts b, the min-count entry
        let top = t.top();
        assert_eq!(top.len(), 2);
        let c = top.iter().find(|e| e.0 == "c").expect("c tracked");
        assert_eq!(c.1, 6, "estimate = evicted floor + increment");
        assert_eq!(c.2, 5, "error records the floor");
        assert!(c.1 - c.2 == 1, "true count within [est-err, est]");
    }

    #[test]
    fn topk_ties_break_deterministically() {
        let run = |order: &[&str]| {
            let mut t = TopK::new(2);
            for k in order {
                t.observe(k, 3);
            }
            t.observe("z", 1);
            t.top()
        };
        // Same multiset, different insertion order: identical final ranking.
        assert_eq!(run(&["a", "b"]), run(&["b", "a"]));
    }

    #[test]
    fn topk_merge_union_fits_is_order_independent() {
        let mut a = TopK::new(8);
        a.observe("x", 3);
        a.observe("y", 9);
        let mut b = TopK::new(8);
        b.observe("y", 2);
        b.observe("z", 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.top(), ba.top());
        assert_eq!(ab.top()[0], ("y".to_string(), 11, 0));
    }
}
