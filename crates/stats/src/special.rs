//! Special functions needed for the Student-t distribution: log-gamma and the
//! regularized incomplete beta function. Implementations follow the classic
//! Lanczos (gamma) and Lentz continued-fraction (beta) formulations from
//! Numerical Recipes, accurate to well beyond the 1e-8 needed for p-values.

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.5203681218851,
    -1259.1392167224028,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507343278686905,
    -0.13857109526572012,
    9.984_369_578_019_572e-6,
    1.5056327351493116e-7,
];

/// Natural log of the gamma function for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + 7.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, 0 ≤ x ≤ 1.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires positive parameters");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly when x is below the symmetry point,
    // otherwise evaluate the symmetric complement (same fraction with the
    // parameters swapped) for fast convergence. Both arms are closed-form so
    // no recursion is possible at the boundary.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - 362880f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_boundaries() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_inc_symmetric_point() {
        // I_{0.5}(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((beta_inc(a, a, 0.5) - 0.5).abs() < 1e-10, "a={a}");
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x
        for x in [0.1, 0.33, 0.77] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_center() {
        for df in [1.0, 5.0, 30.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_known_values() {
        // t=1.812, df=10 -> 0.95 (one-sided critical value)
        assert!((student_t_cdf(1.8125, 10.0) - 0.95).abs() < 1e-3);
        // t=2.228, df=10 -> 0.975
        assert!((student_t_cdf(2.2281, 10.0) - 0.975).abs() < 1e-3);
        // df=1 is Cauchy: CDF(1) = 0.75
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn student_t_cdf_symmetry() {
        for t in [0.5, 1.3, 2.7] {
            let df = 7.0;
            let sum = student_t_cdf(t, df) + student_t_cdf(-t, df);
            assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn student_t_large_df_approaches_normal() {
        // Φ(1.96) ≈ 0.975
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }
}
