//! Plain-text table rendering for experiment reports.
//!
//! The benchmark harness prints every reproduced table/figure as text; this
//! module renders aligned tables so EXPERIMENTS.md and `repro` output stay
//! readable without any plotting dependency.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places, trimming negative zero.
pub fn fnum(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value cells start at the same column.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn truncates_long_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["x", "overflow"]);
        assert!(!t.render().contains("overflow"));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(5.0, 0), "5");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["only", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
