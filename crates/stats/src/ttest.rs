//! Welch's unequal-variances t-test.
//!
//! §5 of the paper: "Since we had data from two different devices, we
//! performed a number of Welch's t-tests in order to understand whether the
//! data sets differ significantly. Only the frame rate differs statistically
//! significantly between the two datasets." This module provides exactly that
//! test, used by experiment E16.

use crate::describe::Description;
use crate::sketch::Moments;
use crate::special::student_t_cdf;
use crate::StatsError;

/// Result of a two-sided Welch's t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch-Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of sample a.
    pub mean_a: f64,
    /// Mean of sample b.
    pub mean_b: f64,
}

impl WelchResult {
    /// Whether the difference is significant at level `alpha` (two-sided).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs Welch's t-test on two independent samples.
///
/// Requires at least two samples on each side. If both samples have zero
/// variance and equal means the statistic is 0 (p = 1); zero variance with
/// different means yields p = 0 (infinite t is avoided by clamping).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<WelchResult, StatsError> {
    for s in [a, b] {
        if s.len() < 2 {
            return Err(StatsError::InsufficientSamples { required: 2, actual: s.len() });
        }
    }
    let da = Description::of(a)?;
    let db = Description::of(b)?;
    Ok(welch_from_parts(da.n as u64, da.mean, da.variance, db.n as u64, db.mean, db.variance))
}

/// Runs Welch's t-test from streaming [`Moments`] — the sufficient
/// statistics `(n, mean, variance)` are all the test needs, so two
/// telemetry streams can be compared without ever materializing their
/// sample vectors. Numerically this applies the exact same formula
/// sequence as [`welch_t_test`], differing only through Welford-vs-batch
/// rounding in the inputs.
pub fn welch_t_test_moments(a: &Moments, b: &Moments) -> Result<WelchResult, StatsError> {
    for m in [a, b] {
        if m.count() < 2 {
            return Err(StatsError::InsufficientSamples {
                required: 2,
                actual: m.count() as usize,
            });
        }
    }
    let (va, vb) = (a.variance().expect("n >= 2"), b.variance().expect("n >= 2"));
    Ok(welch_from_parts(a.count(), a.mean(), va, b.count(), b.mean(), vb))
}

/// The shared Welch computation over `(n, mean, variance)` per side.
fn welch_from_parts(
    na: u64,
    mean_a: f64,
    var_a: f64,
    nb: u64,
    mean_b: f64,
    var_b: f64,
) -> WelchResult {
    let va_n = var_a / na as f64;
    let vb_n = var_b / nb as f64;
    let se2 = va_n + vb_n;
    if se2 == 0.0 {
        let equal = mean_a == mean_b;
        return WelchResult {
            t: 0.0,
            df: (na + nb - 2) as f64,
            p_value: if equal { 1.0 } else { 0.0 },
            mean_a,
            mean_b,
        };
    }
    let t = (mean_a - mean_b) / se2.sqrt();
    // Welch–Satterthwaite approximation.
    let df = se2 * se2 / (va_n * va_n / (na as f64 - 1.0) + vb_n * vb_n / (nb as f64 - 1.0));
    let p_value = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    WelchResult { t, df, p_value: p_value.clamp(0.0, 1.0), mean_a, mean_b }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert_eq!(r.t, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn clearly_different_samples_significant() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 20.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
        assert!(r.significant_at(0.05));
        assert!(r.t < 0.0, "mean_a < mean_b so t negative, got {}", r.t);
    }

    #[test]
    fn matches_reference_computation() {
        // Reference computed independently (Welch formulas + incomplete
        // beta, cross-checked in Python): t = -2.94924, df = 27.3116,
        // p = 0.0064604.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
            31.3,
        ];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.t - (-2.949237)).abs() < 1e-5, "t={}", r.t);
        assert!((r.df - 27.31161).abs() < 1e-4, "df={}", r.df);
        assert!((r.p_value - 0.0064604).abs() < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn requires_two_samples_each() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 2.0], &[]).is_err());
    }

    #[test]
    fn zero_variance_different_means() {
        let r = welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn moments_variant_matches_sample_variant() {
        let a: Vec<f64> = (0..25).map(|i| 10.0 + (i % 7) as f64 * 0.4).collect();
        let b: Vec<f64> = (0..31).map(|i| 11.0 + (i % 5) as f64 * 0.3).collect();
        let fold = |data: &[f64]| {
            let mut m = Moments::new();
            for &x in data {
                m.observe(x);
            }
            m
        };
        let exact = welch_t_test(&a, &b).unwrap();
        let streamed = welch_t_test_moments(&fold(&a), &fold(&b)).unwrap();
        assert!((exact.t - streamed.t).abs() < 1e-9, "{} vs {}", exact.t, streamed.t);
        assert!((exact.df - streamed.df).abs() < 1e-9);
        assert!((exact.p_value - streamed.p_value).abs() < 1e-9);
    }

    #[test]
    fn moments_variant_requires_two_samples() {
        let mut one = Moments::new();
        one.observe(1.0);
        let mut two = Moments::new();
        two.observe(1.0);
        two.observe(2.0);
        assert!(welch_t_test_moments(&one, &two).is_err());
        assert!(welch_t_test_moments(&two, &one).is_err());
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [2.0, 6.0, 4.0, 8.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.t + r2.t).abs() < 1e-12);
    }
}
