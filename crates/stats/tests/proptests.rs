//! Property-based tests of the statistical invariants.

use proptest::prelude::*;
use pscp_stats::boxplot::BoxplotSummary;
use pscp_stats::describe::{Accumulator, Description};
use pscp_stats::ecdf::Ecdf;
use pscp_stats::histogram::{Binning, Histogram};
use pscp_stats::quantile::{median, quantile};
use pscp_stats::regression::{linear_fit, pearson, spearman};
use pscp_stats::ttest::welch_t_test;

fn arb_data() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn quantile_within_range(data in arb_data(), p in 0.0f64..=1.0) {
        let q = quantile(&data, p).unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= min && q <= max);
    }

    #[test]
    fn quantile_monotone(data in arb_data(), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap());
    }

    #[test]
    fn ecdf_bounds_and_monotonicity(data in arb_data(), x1 in -1e6f64..1e6, x2 in -1e6f64..1e6) {
        let e = Ecdf::new(&data).unwrap();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = e.eval(lo);
        let f_hi = e.eval(hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_lo <= f_hi);
        // Inverse is a quasi-inverse: F(F^{-1}(p)) >= p.
        let p = 0.37;
        prop_assert!(e.eval(e.inverse(p)) >= p - 1e-12);
    }

    #[test]
    fn boxplot_ordering_invariants(data in arb_data()) {
        let b = BoxplotSummary::of(&data).unwrap();
        prop_assert!(b.whisker_low <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.q3 <= b.whisker_high + 1e-9);
        // Outliers lie strictly outside the whiskers.
        for &o in &b.outliers {
            prop_assert!(o < b.whisker_low || o > b.whisker_high);
        }
        // Outliers + in-range = n.
        prop_assert!(b.outliers.len() < b.n || b.n == b.outliers.len());
    }

    #[test]
    fn welch_p_value_in_unit_interval(
        a in prop::collection::vec(-100f64..100.0, 2..50),
        b in prop::collection::vec(-100f64..100.0, 2..50),
    ) {
        let r = welch_t_test(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value), "p={}", r.p_value);
        prop_assert!(r.df >= 1.0 || a.len() == 2 && b.len() == 2);
    }

    #[test]
    fn welch_shift_invariance(
        a in prop::collection::vec(-100f64..100.0, 3..30),
        b in prop::collection::vec(-100f64..100.0, 3..30),
        shift in -1000f64..1000.0,
    ) {
        let r1 = welch_t_test(&a, &b).unwrap();
        let a2: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let b2: Vec<f64> = b.iter().map(|x| x + shift).collect();
        let r2 = welch_t_test(&a2, &b2).unwrap();
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-6);
    }

    #[test]
    fn correlation_in_unit_ball(
        pairs in prop::collection::vec((-100f64..100.0, -100f64..100.0), 3..80),
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
        if let Ok(rs) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rs));
        }
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pairs in prop::collection::vec((-100f64..100.0, -100f64..100.0), 3..50),
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Ok(f) = linear_fit(&x, &y) {
            // Residuals sum to ~0 (least squares normal equations).
            let resid_sum: f64 = x
                .iter()
                .zip(&y)
                .map(|(&xi, &yi)| yi - (f.slope * xi + f.intercept))
                .sum();
            prop_assert!(resid_sum.abs() < 1e-6 * (y.len() as f64) * 100.0,
                "resid_sum={resid_sum}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f.r_squared));
        }
    }

    #[test]
    fn accumulator_equals_batch(data in arb_data()) {
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.push(x);
        }
        let streamed = acc.finish().unwrap();
        let batch = Description::of(&data).unwrap();
        prop_assert!((streamed.mean - batch.mean).abs() < 1e-6);
        prop_assert!((streamed.variance - batch.variance).abs() < 1e-3 * batch.variance.max(1.0));
        prop_assert_eq!(streamed.min, batch.min);
        prop_assert_eq!(streamed.max, batch.max);
    }

    #[test]
    fn histogram_conserves_samples(data in arb_data(), count in 1usize..20) {
        let h = Histogram::new(&data, Binning::Linear { lo: -1e5, hi: 1e5, count }).unwrap();
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            data.len() as u64
        );
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn median_is_half_quantile(data in arb_data()) {
        prop_assert_eq!(median(&data).unwrap(), quantile(&data, 0.5).unwrap());
    }
}
