//! Property-based tests of the statistical invariants, on the in-tree
//! `pscp-check` harness.

use pscp_check::{check, ensure, ensure_eq, Gen};
use pscp_stats::boxplot::BoxplotSummary;
use pscp_stats::describe::{Accumulator, Description};
use pscp_stats::ecdf::Ecdf;
use pscp_stats::histogram::{Binning, Histogram};
use pscp_stats::quantile::{median, quantile, quantile_sorted};
use pscp_stats::regression::{linear_fit, pearson, spearman};
use pscp_stats::sketch::{Moments, QuantileSketch};
use pscp_stats::ttest::{welch_t_test, welch_t_test_moments};

fn arb_data(g: &mut Gen) -> Vec<f64> {
    g.vec(1..200, |g| g.f64(-1e6..1e6))
}

#[test]
fn quantile_within_range() {
    check(
        "quantile_within_range",
        |g: &mut Gen| (arb_data(g), g.f64(0.0..=1.0)),
        |(data, p)| {
            let q = quantile(data, *p).map_err(|e| format!("{e:?}"))?;
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            ensure!(q >= min && q <= max, "q={q} outside [{min}, {max}]");
            Ok(())
        },
    );
}

#[test]
fn quantile_monotone() {
    check(
        "quantile_monotone",
        |g: &mut Gen| (arb_data(g), g.f64(0.0..=1.0), g.f64(0.0..=1.0)),
        |(data, p1, p2)| {
            let (lo, hi) = if p1 <= p2 { (*p1, *p2) } else { (*p2, *p1) };
            let q_lo = quantile(data, lo).map_err(|e| format!("{e:?}"))?;
            let q_hi = quantile(data, hi).map_err(|e| format!("{e:?}"))?;
            ensure!(q_lo <= q_hi, "quantile not monotone: F({lo})={q_lo} > F({hi})={q_hi}");
            Ok(())
        },
    );
}

#[test]
fn ecdf_bounds_and_monotonicity() {
    check(
        "ecdf_bounds_and_monotonicity",
        |g: &mut Gen| (arb_data(g), g.f64(-1e6..1e6), g.f64(-1e6..1e6)),
        |(data, x1, x2)| {
            let e = Ecdf::new(data).map_err(|e| format!("{e:?}"))?;
            let (lo, hi) = if x1 <= x2 { (*x1, *x2) } else { (*x2, *x1) };
            let f_lo = e.eval(lo);
            let f_hi = e.eval(hi);
            ensure!((0.0..=1.0).contains(&f_lo), "F out of [0,1]: {f_lo}");
            ensure!(f_lo <= f_hi, "ECDF not monotone");
            // Inverse is a quasi-inverse: F(F^{-1}(p)) >= p.
            let p = 0.37;
            ensure!(e.eval(e.inverse(p)) >= p - 1e-12, "quasi-inverse violated");
            Ok(())
        },
    );
}

#[test]
fn boxplot_ordering_invariants() {
    check("boxplot_ordering_invariants", arb_data, |data| {
        let b = BoxplotSummary::of(data).map_err(|e| format!("{e:?}"))?;
        ensure!(b.whisker_low <= b.q1 + 1e-9, "whisker_low above q1");
        ensure!(b.q1 <= b.median && b.median <= b.q3, "quartiles out of order");
        ensure!(b.q3 <= b.whisker_high + 1e-9, "q3 above whisker_high");
        // Outliers lie strictly outside the whiskers.
        for &o in &b.outliers {
            ensure!(o < b.whisker_low || o > b.whisker_high, "inlier flagged: {o}");
        }
        // Outliers + in-range = n.
        ensure!(b.outliers.len() < b.n || b.n == b.outliers.len(), "outlier count > n");
        Ok(())
    });
}

#[test]
fn welch_p_value_in_unit_interval() {
    check(
        "welch_p_value_in_unit_interval",
        |g: &mut Gen| {
            (g.vec(2..50, |g| g.f64(-100.0..100.0)), g.vec(2..50, |g| g.f64(-100.0..100.0)))
        },
        |(a, b)| {
            let r = welch_t_test(a, b).map_err(|e| format!("{e:?}"))?;
            ensure!((0.0..=1.0).contains(&r.p_value), "p={}", r.p_value);
            ensure!(r.df >= 1.0 || a.len() == 2 && b.len() == 2, "df={} too small", r.df);
            Ok(())
        },
    );
}

#[test]
fn welch_shift_invariance() {
    check(
        "welch_shift_invariance",
        |g: &mut Gen| {
            (
                g.vec(3..30, |g| g.f64(-100.0..100.0)),
                g.vec(3..30, |g| g.f64(-100.0..100.0)),
                g.f64(-1000.0..1000.0),
            )
        },
        |(a, b, shift)| {
            let r1 = welch_t_test(a, b).map_err(|e| format!("{e:?}"))?;
            let a2: Vec<f64> = a.iter().map(|x| x + shift).collect();
            let b2: Vec<f64> = b.iter().map(|x| x + shift).collect();
            let r2 = welch_t_test(&a2, &b2).map_err(|e| format!("{e:?}"))?;
            ensure!(
                (r1.p_value - r2.p_value).abs() < 1e-6,
                "shift changed p: {} vs {}",
                r1.p_value,
                r2.p_value
            );
            Ok(())
        },
    );
}

#[test]
fn correlation_in_unit_ball() {
    check(
        "correlation_in_unit_ball",
        |g: &mut Gen| g.vec(3..80, |g| (g.f64(-100.0..100.0), g.f64(-100.0..100.0))),
        |pairs| {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(r) = pearson(&x, &y) {
                ensure!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "pearson={r}");
            }
            if let Ok(rs) = spearman(&x, &y) {
                ensure!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rs), "spearman={rs}");
            }
            Ok(())
        },
    );
}

#[test]
fn linear_fit_residual_orthogonality() {
    check(
        "linear_fit_residual_orthogonality",
        |g: &mut Gen| g.vec(3..50, |g| (g.f64(-100.0..100.0), g.f64(-100.0..100.0))),
        |pairs| {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(f) = linear_fit(&x, &y) {
                // Residuals sum to ~0 (least squares normal equations).
                let resid_sum: f64 =
                    x.iter().zip(&y).map(|(&xi, &yi)| yi - (f.slope * xi + f.intercept)).sum();
                ensure!(resid_sum.abs() < 1e-6 * (y.len() as f64) * 100.0, "resid_sum={resid_sum}");
                ensure!((0.0..=1.0 + 1e-9).contains(&f.r_squared), "r²={}", f.r_squared);
            }
            Ok(())
        },
    );
}

#[test]
fn accumulator_equals_batch() {
    check("accumulator_equals_batch", arb_data, |data| {
        let mut acc = Accumulator::new();
        for &x in data {
            acc.push(x);
        }
        let streamed = acc.finish().ok_or("empty accumulator")?;
        let batch = Description::of(data).map_err(|e| format!("{e:?}"))?;
        ensure!((streamed.mean - batch.mean).abs() < 1e-6, "means differ");
        ensure!(
            (streamed.variance - batch.variance).abs() < 1e-3 * batch.variance.max(1.0),
            "variances differ"
        );
        ensure_eq!(streamed.min, batch.min);
        ensure_eq!(streamed.max, batch.max);
        Ok(())
    });
}

#[test]
fn histogram_conserves_samples() {
    check(
        "histogram_conserves_samples",
        |g: &mut Gen| (arb_data(g), g.usize(1..20)),
        |(data, count)| {
            let h = Histogram::new(data, Binning::Linear { lo: -1e5, hi: 1e5, count: *count })
                .map_err(|e| format!("{e:?}"))?;
            let binned: u64 = h.counts().iter().sum();
            ensure_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
            ensure_eq!(h.total(), data.len() as u64);
            Ok(())
        },
    );
}

#[test]
fn median_is_half_quantile() {
    check("median_is_half_quantile", arb_data, |data| {
        let m = median(data).map_err(|e| format!("{e:?}"))?;
        let q = quantile(data, 0.5).map_err(|e| format!("{e:?}"))?;
        ensure_eq!(m, q);
        Ok(())
    });
}

/// Microsecond-magnitude values spanning the sketch's exact region and
/// several log-linear octaves.
fn arb_us(g: &mut Gen) -> Vec<u64> {
    g.vec(1..300, |g| g.u64(0..=10_000_000))
}

#[test]
fn sketch_merge_is_plan_order_associative() {
    // The deterministic-parallel contract: folding per-unit sketches in
    // plan order must give the same state no matter how the plan was
    // chunked across workers — serial, binary-tree, or per-element merges
    // all land on identical sketches (dense buckets make merge exactly
    // commutative and associative, so even reversed order agrees).
    check(
        "sketch_merge_is_plan_order_associative",
        |g: &mut Gen| (arb_us(g), g.usize(1..8)),
        |(values, chunks)| {
            let mut serial = QuantileSketch::new();
            for &v in values {
                serial.observe(v);
            }
            let chunk_len = values.len().div_ceil(*chunks);
            let mut chunked = QuantileSketch::new();
            for chunk in values.chunks(chunk_len.max(1)) {
                let mut part = QuantileSketch::new();
                for &v in chunk {
                    part.observe(v);
                }
                chunked.merge(&part);
            }
            let mut reversed = QuantileSketch::new();
            for &v in values.iter().rev() {
                let mut one = QuantileSketch::new();
                one.observe(v);
                reversed.merge(&one);
            }
            ensure!(serial == chunked, "chunked merge diverged from serial fold");
            ensure!(serial == reversed, "reversed per-element merge diverged");
            ensure_eq!(serial.quantile(0.5), chunked.quantile(0.5));
            // Footprint stays bounded by the bucket policy, not by n
            // (capacity, not contents, so only an upper bound is stable).
            ensure!(serial.memory_bytes() < 64 * 1024, "sketch footprint not O(1)");
            Ok(())
        },
    );
}

#[test]
fn sketch_quantile_rank_error_vs_quantile_sorted() {
    // The estimate must sit within one rank of the exact quantile, modulo
    // one log-linear bucket width (<= value/128 + 1 at 7 sub-bucket bits).
    check(
        "sketch_quantile_rank_error_vs_quantile_sorted",
        |g: &mut Gen| (arb_us(g), g.f64(0.0..=1.0)),
        |(values, p)| {
            let mut sketch = QuantileSketch::new();
            let mut sorted: Vec<f64> = Vec::with_capacity(values.len());
            for &v in values {
                sketch.observe(v);
                sorted.push(v as f64);
            }
            sorted.sort_by(f64::total_cmp);
            let est = sketch.quantile(*p).ok_or("non-empty sketch returned None")? as f64;
            let n = sorted.len() as f64;
            let exact_lo = quantile_sorted(&sorted, (p - 1.0 / n).max(0.0));
            let exact_hi = quantile_sorted(&sorted, (p + 1.0 / n).min(1.0));
            let lo_bound = exact_lo - exact_lo / 128.0 - 1.0;
            let hi_bound = exact_hi + exact_hi / 128.0 + 1.0;
            ensure!(
                (lo_bound..=hi_bound).contains(&est),
                "quantile({p}) = {est} outside [{lo_bound}, {hi_bound}] (n = {})",
                sorted.len()
            );
            Ok(())
        },
    );
}

#[test]
fn moments_merge_matches_batch_welch() {
    // Streaming Welford moments merged across arbitrary splits must agree
    // with the batch t-test on the concatenated samples.
    check(
        "moments_merge_matches_batch_welch",
        |g: &mut Gen| {
            (
                g.vec(2..60, |g| g.f64(-100.0..100.0)),
                g.vec(2..60, |g| g.f64(-100.0..100.0)),
                g.usize(0..60),
            )
        },
        |(a, b, split)| {
            let fold = |xs: &[f64]| {
                let cut = (*split).min(xs.len());
                let mut left = Moments::new();
                let mut right = Moments::new();
                for &x in &xs[..cut] {
                    left.observe(x);
                }
                for &x in &xs[cut..] {
                    right.observe(x);
                }
                left.merge(&right);
                left
            };
            let (ma, mb) = (fold(a), fold(b));
            let streamed = welch_t_test_moments(&ma, &mb).map_err(|e| format!("{e:?}"))?;
            let batch = welch_t_test(a, b).map_err(|e| format!("{e:?}"))?;
            ensure!((streamed.t - batch.t).abs() < 1e-6, "t diverged");
            ensure!((streamed.p_value - batch.p_value).abs() < 1e-6, "p diverged");
            ensure_eq!(ma.count(), a.len() as u64);
            Ok(())
        },
    );
}
