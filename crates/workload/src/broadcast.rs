//! Broadcast records: identity, place, time, content and device.

use crate::viewers;
use pscp_media::audio::AudioBitrate;
use pscp_media::content::ContentClass;
use pscp_media::encoder::GopPattern;
use pscp_simnet::{GeoPoint, SimDuration, SimTime};

/// A 13-character broadcast id, as the Periscope API uses (§3, Table 1:
/// "List of 13-character broadcast IDs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BroadcastId(pub u64);

impl BroadcastId {
    /// Renders the 13-character base-32 textual form.
    pub fn as_string(&self) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz234567";
        let mut chars = [b'a'; 13];
        let mut v = self.0;
        for slot in chars.iter_mut().rev() {
            *slot = ALPHABET[(v % 32) as usize];
            v /= 32;
        }
        String::from_utf8(chars.to_vec()).expect("alphabet is ASCII")
    }

    /// Parses the textual form back.
    pub fn parse(s: &str) -> Option<BroadcastId> {
        if s.len() != 13 {
            return None;
        }
        let mut v: u64 = 0;
        for c in s.bytes() {
            let d = match c {
                b'a'..=b'z' => c - b'a',
                b'2'..=b'7' => c - b'2' + 26,
                _ => return None,
            };
            v = v.checked_mul(32)?.checked_add(d as u64)?;
        }
        Some(BroadcastId(v))
    }
}

/// Broadcaster device capability class.
///
/// §5.2 speculates the ~20% of streams without B frames come from "old
/// hardware \[that\] might not support them for encoding"; 2 streams were
/// intra-only. The two measurement phones (Galaxy S3/S4) differ only in
/// achievable frame rate — the one statistically significant difference the
/// paper's Welch tests found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceProfile {
    /// Current-generation phone: full IBP encoding at ~30 fps.
    Modern,
    /// Older encoder without B-frame support.
    NoBFrames,
    /// Ancient/odd encoder producing intra-only streams.
    IntraOnly,
}

impl DeviceProfile {
    /// GOP pattern this device encodes.
    pub fn gop(self) -> GopPattern {
        match self {
            DeviceProfile::Modern => GopPattern::Ibp,
            DeviceProfile::NoBFrames => GopPattern::IpOnly,
            DeviceProfile::IntraOnly => GopPattern::IOnly,
        }
    }

    /// Nominal capture frame rate.
    pub fn fps(self) -> f64 {
        match self {
            DeviceProfile::Modern => 30.0,
            DeviceProfile::NoBFrames => 27.0,
            DeviceProfile::IntraOnly => 24.0,
        }
    }
}

/// One broadcast in the synthetic population.
#[derive(Debug, Clone)]
pub struct Broadcast {
    /// Unique id.
    pub id: BroadcastId,
    /// Broadcaster location.
    pub location: GeoPoint,
    /// Nearest city name (diagnostics).
    pub city: &'static str,
    /// Start instant.
    pub start: SimTime,
    /// Total live duration.
    pub duration: SimDuration,
    /// Content class driving the encoder's complexity process.
    pub content: ContentClass,
    /// Broadcaster device.
    pub device: DeviceProfile,
    /// Audio bitrate choice (32 or 64 kbps, §5.2).
    pub audio: AudioBitrate,
    /// Ground-truth average concurrent viewers (0 for the no-viewer class).
    pub avg_viewers: f64,
    /// Whether a replay is available after the broadcast ends.
    pub replay_available: bool,
    /// Whether the broadcast is private (invisible to the crawler).
    pub private: bool,
    /// Whether the broadcaster disclosed a location (map-discoverable).
    pub location_public: bool,
    /// Seed for the per-broadcast viewer trajectory noise.
    pub viewer_seed: u64,
    /// Encoder rate-control target, bits/second. Broadcasts vary widely
    /// (Fig 6a: bitrates from under 100 kbps to over 1 Mbps).
    pub target_bitrate_bps: f64,
}

impl Broadcast {
    /// End instant.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Whether the broadcast is live at `t`.
    pub fn is_live_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }

    /// Whether the crawler can discover it on the map at `t`.
    pub fn discoverable_at(&self, t: SimTime) -> bool {
        self.is_live_at(t) && !self.private && self.location_public
    }

    /// Concurrent viewer count at `t` (0 when not live).
    pub fn viewers_at(&self, t: SimTime) -> u32 {
        if !self.is_live_at(t) || self.avg_viewers <= 0.0 {
            return 0;
        }
        let progress =
            t.saturating_since(self.start).as_secs_f64() / self.duration.as_secs_f64().max(1e-9);
        viewers::viewers_at(self.avg_viewers, progress, self.viewer_seed, t)
    }

    /// Local hour of day at the given instant, using the longitude-derived
    /// timezone and taking `utc_start_hour` as the UTC hour at sim t=0.
    pub fn local_hour_at(&self, t: SimTime, utc_start_hour: f64) -> f64 {
        let utc_hour = (utc_start_hour + t.as_secs_f64() / 3600.0).rem_euclid(24.0);
        (utc_hour + self.location.utc_offset_hours() as f64).rem_euclid(24.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broadcast() -> Broadcast {
        Broadcast {
            id: BroadcastId(12345),
            location: GeoPoint::new(41.01, 28.98),
            city: "Istanbul",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(300),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 10.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: 7,
            target_bitrate_bps: 300_000.0,
        }
    }

    #[test]
    fn id_string_is_13_chars_and_roundtrips() {
        for v in [0u64, 1, 12345, u64::MAX / 32] {
            let id = BroadcastId(v);
            let s = id.as_string();
            assert_eq!(s.len(), 13);
            assert_eq!(BroadcastId::parse(&s), Some(id));
        }
    }

    #[test]
    fn id_parse_rejects_bad_input() {
        assert_eq!(BroadcastId::parse("short"), None);
        assert_eq!(BroadcastId::parse("ABCDEFGHIJKLM"), None); // uppercase
        assert_eq!(BroadcastId::parse("aaaaaaaaaaaa1"), None); // '1' not in alphabet
    }

    #[test]
    fn ids_distinct() {
        assert_ne!(BroadcastId(1).as_string(), BroadcastId(2).as_string());
    }

    #[test]
    fn liveness_window() {
        let b = broadcast();
        assert!(!b.is_live_at(SimTime::from_secs(99)));
        assert!(b.is_live_at(SimTime::from_secs(100)));
        assert!(b.is_live_at(SimTime::from_secs(399)));
        assert!(!b.is_live_at(SimTime::from_secs(400)));
        assert_eq!(b.end(), SimTime::from_secs(400));
    }

    #[test]
    fn discoverability_respects_privacy() {
        let mut b = broadcast();
        let t = SimTime::from_secs(200);
        assert!(b.discoverable_at(t));
        b.private = true;
        assert!(!b.discoverable_at(t));
        b.private = false;
        b.location_public = false;
        assert!(!b.discoverable_at(t));
    }

    #[test]
    fn viewers_zero_outside_and_for_unpopular() {
        let mut b = broadcast();
        assert_eq!(b.viewers_at(SimTime::from_secs(50)), 0);
        b.avg_viewers = 0.0;
        assert_eq!(b.viewers_at(SimTime::from_secs(200)), 0);
    }

    #[test]
    fn viewers_positive_when_live() {
        let b = broadcast();
        let mid = SimTime::from_secs(250);
        assert!(b.viewers_at(mid) > 0);
    }

    #[test]
    fn local_hour_istanbul() {
        let b = broadcast();
        // Istanbul is UTC+2 by longitude (28.98/15 ≈ 1.93 → 2).
        let h = b.local_hour_at(SimTime::from_secs(100), 12.0);
        assert!((h - 14.0).abs() < 0.1, "h={h}");
    }

    #[test]
    fn device_profiles() {
        assert_eq!(DeviceProfile::Modern.gop(), GopPattern::Ibp);
        assert_eq!(DeviceProfile::NoBFrames.gop(), GopPattern::IpOnly);
        assert_eq!(DeviceProfile::IntraOnly.gop(), GopPattern::IOnly);
        assert!(DeviceProfile::Modern.fps() > DeviceProfile::NoBFrames.fps());
    }
}
