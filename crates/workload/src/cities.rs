//! World cities used to place broadcasters.
//!
//! Periscope usage in 2016 concentrated in a few dozen metro areas (Turkey,
//! the US, Western Europe, Brazil and Japan were famously heavy). Weights
//! below are relative activity, not population: they exist to make the
//! spatial distribution *clumpy*, which is the property the deep-crawl
//! experiment (Fig 1) depends on.

use pscp_simnet::GeoPoint;

/// A city with its Periscope-activity weight.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// Display name.
    pub name: &'static str,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// Relative broadcast-activity weight.
    pub weight: f64,
}

impl City {
    /// Location as a [`GeoPoint`].
    pub fn point(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

/// The city list (64 metros across every inhabited continent).
pub const CITIES: &[City] = &[
    City { name: "Istanbul", lat: 41.01, lon: 28.98, weight: 10.0 },
    City { name: "Ankara", lat: 39.93, lon: 32.86, weight: 4.0 },
    City { name: "Izmir", lat: 38.42, lon: 27.14, weight: 3.0 },
    City { name: "New York", lat: 40.71, lon: -74.01, weight: 8.0 },
    City { name: "Los Angeles", lat: 34.05, lon: -118.24, weight: 7.0 },
    City { name: "Chicago", lat: 41.88, lon: -87.63, weight: 4.0 },
    City { name: "Houston", lat: 29.76, lon: -95.37, weight: 3.0 },
    City { name: "Miami", lat: 25.76, lon: -80.19, weight: 3.0 },
    City { name: "San Francisco", lat: 37.77, lon: -122.42, weight: 4.5 },
    City { name: "Seattle", lat: 47.61, lon: -122.33, weight: 2.5 },
    City { name: "Toronto", lat: 43.65, lon: -79.38, weight: 2.5 },
    City { name: "Mexico City", lat: 19.43, lon: -99.13, weight: 4.0 },
    City { name: "São Paulo", lat: -23.55, lon: -46.63, weight: 6.0 },
    City { name: "Rio de Janeiro", lat: -22.91, lon: -43.17, weight: 4.0 },
    City { name: "Buenos Aires", lat: -34.60, lon: -58.38, weight: 3.0 },
    City { name: "Bogotá", lat: 4.71, lon: -74.07, weight: 2.0 },
    City { name: "Lima", lat: -12.05, lon: -77.04, weight: 1.5 },
    City { name: "Santiago", lat: -33.45, lon: -70.67, weight: 1.5 },
    City { name: "London", lat: 51.51, lon: -0.13, weight: 6.0 },
    City { name: "Paris", lat: 48.86, lon: 2.35, weight: 5.0 },
    City { name: "Berlin", lat: 52.52, lon: 13.40, weight: 3.0 },
    City { name: "Madrid", lat: 40.42, lon: -3.70, weight: 3.5 },
    City { name: "Barcelona", lat: 41.39, lon: 2.17, weight: 2.5 },
    City { name: "Rome", lat: 41.90, lon: 12.50, weight: 3.0 },
    City { name: "Milan", lat: 45.46, lon: 9.19, weight: 2.0 },
    City { name: "Amsterdam", lat: 52.37, lon: 4.90, weight: 2.0 },
    City { name: "Brussels", lat: 50.85, lon: 4.35, weight: 1.2 },
    City { name: "Stockholm", lat: 59.33, lon: 18.07, weight: 1.5 },
    City { name: "Oslo", lat: 59.91, lon: 10.75, weight: 1.0 },
    City { name: "Helsinki", lat: 60.17, lon: 24.94, weight: 1.2 },
    City { name: "Copenhagen", lat: 55.68, lon: 12.57, weight: 1.2 },
    City { name: "Dublin", lat: 53.35, lon: -6.26, weight: 1.0 },
    City { name: "Lisbon", lat: 38.72, lon: -9.14, weight: 1.2 },
    City { name: "Athens", lat: 37.98, lon: 23.73, weight: 1.5 },
    City { name: "Warsaw", lat: 52.23, lon: 21.01, weight: 1.5 },
    City { name: "Prague", lat: 50.08, lon: 14.44, weight: 1.2 },
    City { name: "Vienna", lat: 48.21, lon: 16.37, weight: 1.2 },
    City { name: "Moscow", lat: 55.76, lon: 37.62, weight: 4.0 },
    City { name: "Saint Petersburg", lat: 59.93, lon: 30.34, weight: 2.0 },
    City { name: "Kyiv", lat: 50.45, lon: 30.52, weight: 1.5 },
    City { name: "Dubai", lat: 25.20, lon: 55.27, weight: 2.5 },
    City { name: "Riyadh", lat: 24.71, lon: 46.68, weight: 2.5 },
    City { name: "Cairo", lat: 30.04, lon: 31.24, weight: 2.0 },
    City { name: "Lagos", lat: 6.52, lon: 3.38, weight: 1.5 },
    City { name: "Nairobi", lat: -1.29, lon: 36.82, weight: 1.0 },
    City { name: "Johannesburg", lat: -26.20, lon: 28.05, weight: 1.5 },
    City { name: "Mumbai", lat: 19.08, lon: 72.88, weight: 3.0 },
    City { name: "Delhi", lat: 28.70, lon: 77.10, weight: 2.5 },
    City { name: "Bangalore", lat: 12.97, lon: 77.59, weight: 1.5 },
    City { name: "Karachi", lat: 24.86, lon: 67.00, weight: 1.2 },
    City { name: "Jakarta", lat: -6.21, lon: 106.85, weight: 2.5 },
    City { name: "Bangkok", lat: 13.76, lon: 100.50, weight: 2.5 },
    City { name: "Singapore", lat: 1.35, lon: 103.82, weight: 1.8 },
    City { name: "Kuala Lumpur", lat: 3.139, lon: 101.69, weight: 1.5 },
    City { name: "Manila", lat: 14.60, lon: 120.98, weight: 2.0 },
    City { name: "Ho Chi Minh City", lat: 10.82, lon: 106.63, weight: 1.5 },
    City { name: "Hong Kong", lat: 22.32, lon: 114.17, weight: 2.0 },
    City { name: "Taipei", lat: 25.03, lon: 121.57, weight: 1.5 },
    City { name: "Seoul", lat: 37.57, lon: 126.98, weight: 3.0 },
    City { name: "Tokyo", lat: 35.68, lon: 139.69, weight: 6.0 },
    City { name: "Osaka", lat: 34.69, lon: 135.50, weight: 2.5 },
    City { name: "Sydney", lat: -33.87, lon: 151.21, weight: 2.5 },
    City { name: "Melbourne", lat: -37.81, lon: 144.96, weight: 2.0 },
    City { name: "Auckland", lat: -36.85, lon: 174.76, weight: 0.8 },
];

/// Total weight across [`CITIES`].
pub fn total_weight() -> f64 {
    CITIES.iter().map(|c| c.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_list_spans_continents() {
        assert!(CITIES.len() >= 60);
        assert!(CITIES.iter().any(|c| c.lat < -20.0)); // southern hemisphere
        assert!(CITIES.iter().any(|c| c.lon > 100.0)); // east Asia
        assert!(CITIES.iter().any(|c| c.lon < -100.0)); // western Americas
    }

    #[test]
    fn weights_positive() {
        assert!(CITIES.iter().all(|c| c.weight > 0.0));
        assert!(total_weight() > 100.0);
    }

    #[test]
    fn istanbul_is_heaviest() {
        // 2016 Periscope lore: Turkey topped usage charts.
        let max = CITIES.iter().max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap()).unwrap();
        assert_eq!(max.name, "Istanbul");
    }

    #[test]
    fn coordinates_valid() {
        for c in CITIES {
            assert!((-90.0..=90.0).contains(&c.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon), "{}", c.name);
        }
    }
}
