//! Diurnal activity model.
//!
//! Fig 2(b) of the paper shows average viewers per broadcast against the
//! broadcaster's *local* start hour: "a notable slump in the early hours of
//! the day, a peak in the morning, and an increasing trend towards
//! midnight, which suggest that broadcasts typically have local viewers."
//! The same curve modulates both how often people start broadcasts and how
//! many local viewers are around to watch them.

/// Relative activity by local hour (0–23). Normalised so the mean is ~1.
const HOURLY: [f64; 24] = [
    1.30, // 00 — still high towards midnight
    0.95, 0.60, 0.40, 0.30, 0.35, // 01-05 — the early-hours slump
    0.55, 0.90, 1.20, 1.25, 1.05, 0.95, // 06-11 — morning peak around 8-9
    1.00, 1.00, 0.95, 0.95, 1.00, 1.05, // 12-17 — flat afternoon
    1.10, 1.15, 1.20, 1.28, 1.35, 1.40, // 18-23 — rising towards midnight
];

/// Activity multiplier at a fractional local hour (piecewise-linear between
/// hourly control points, wrapping at midnight).
pub fn activity(local_hour: f64) -> f64 {
    let h = local_hour.rem_euclid(24.0);
    let i = h.floor() as usize % 24;
    let j = (i + 1) % 24;
    let frac = h - h.floor();
    HOURLY[i] * (1.0 - frac) + HOURLY[j] * frac
}

/// Converts a UTC time-of-day (seconds since local midnight at UTC) plus a
/// timezone offset into a local hour.
pub fn local_hour(utc_seconds_of_day: f64, utc_offset_hours: i32) -> f64 {
    (utc_seconds_of_day / 3600.0 + utc_offset_hours as f64).rem_euclid(24.0)
}

/// Maximum of the activity curve, for rejection sampling of arrivals.
pub fn peak_activity() -> f64 {
    HOURLY.iter().cloned().fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slump_peak_midnight_shape() {
        // Early-morning slump is the minimum.
        let slump = activity(4.0);
        assert!(slump < 0.5);
        // Morning peak around 9.
        assert!(activity(9.0) > 1.1);
        // Rising toward midnight: 23h > 18h.
        assert!(activity(23.0) > activity(18.0));
        // Midnight still higher than mid-afternoon.
        assert!(activity(0.0) > activity(14.0));
    }

    #[test]
    fn interpolation_continuous() {
        for h in 0..24 {
            let a = activity(h as f64 + 0.999);
            let b = activity((h as f64 + 1.0) % 24.0);
            assert!((a - b).abs() < 0.01, "discontinuity at {h}");
        }
    }

    #[test]
    fn mean_close_to_one() {
        let mean: f64 = (0..240).map(|i| activity(i as f64 / 10.0)).sum::<f64>() / 240.0;
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn local_hour_wraps() {
        assert_eq!(local_hour(0.0, 0), 0.0);
        assert_eq!(local_hour(3600.0 * 12.0, 2), 14.0);
        assert_eq!(local_hour(3600.0 * 23.0, 3), 2.0);
        assert_eq!(local_hour(3600.0, -2), 23.0);
    }

    #[test]
    fn peak_bounds_curve() {
        let p = peak_activity();
        for i in 0..240 {
            assert!(activity(i as f64 / 10.0) <= p + 1e-12);
        }
    }
}
