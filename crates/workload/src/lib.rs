#![warn(missing_docs)]

//! Synthetic Periscope broadcast population.
//!
//! The original study crawled a live service; this crate generates the
//! population that crawl observed, calibrated to every §4 statistic the
//! paper reports:
//!
//! * most broadcasts last 1–10 minutes, roughly half under 4 minutes, with
//!   a long tail beyond a day;
//! * over 90% of broadcasts average fewer than 20 viewers; a few attract
//!   thousands; over 10% have no viewers at all;
//! * zero-viewer broadcasts are much shorter (average ~2 min vs ~13 min)
//!   and over 80% of them are not available for replay;
//! * popularity is only weakly correlated with duration otherwise;
//! * viewing is local: a diurnal activity curve (early-morning slump,
//!   morning peak, rise toward midnight) modulates both broadcast arrivals
//!   and viewer counts in the broadcaster's local time (Fig 2b).
//!
//! Geography concentrates broadcasts in cities ([`cities`]), which is what
//! makes the paper's deep-crawl observation hold: half of the queried map
//! areas contain at least 80% of discovered broadcasts (Fig 1b).

pub mod broadcast;
pub mod cities;
pub mod diurnal;
pub mod population;
pub mod titles;
pub mod viewers;

pub use broadcast::{Broadcast, BroadcastId, DeviceProfile};
pub use population::{Population, PopulationConfig};
