//! Population generation: who broadcasts, where, when, for how long, and
//! for how many viewers.

use crate::broadcast::{Broadcast, BroadcastId, DeviceProfile};
use crate::cities::{City, CITIES};
use crate::diurnal;
use pscp_media::audio::AudioBitrate;
use pscp_media::content::ContentClass;
use pscp_simnet::dist;
use pscp_simnet::rng::Rng;
use pscp_simnet::{GeoPoint, RngFactory, SimDuration, SimTime};

/// Configuration of the synthetic population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Simulated wall span. Crawls and sessions happen inside this window.
    pub window: SimDuration,
    /// Mean *discoverable* broadcast arrivals per second at unit diurnal
    /// activity, worldwide. The paper's deep crawls find 1K–4K live
    /// broadcasts; with ~6.5-minute mean durations, 5–10 arrivals/s lands
    /// in that range.
    pub arrivals_per_sec: f64,
    /// UTC hour of day at simulation t = 0.
    pub utc_start_hour: f64,
    /// Probability a broadcast has no viewers at all (paper: >10%).
    pub zero_viewer_prob: f64,
    /// Probability a broadcast is private (invisible to crawls).
    pub private_prob: f64,
    /// Probability a public broadcast hides its location.
    pub location_hidden_prob: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            window: SimDuration::from_secs(4 * 3600),
            arrivals_per_sec: 7.0,
            utc_start_hour: 12.0,
            zero_viewer_prob: 0.16,
            private_prob: 0.08,
            location_hidden_prob: 0.10,
        }
    }
}

impl PopulationConfig {
    /// A small population for tests and examples (minutes, not hours).
    pub fn small() -> Self {
        PopulationConfig {
            window: SimDuration::from_secs(1200),
            arrivals_per_sec: 1.5,
            ..Default::default()
        }
    }

    /// A medium population: enough statistical mass for distribution tests
    /// at a fraction of the default's generation cost.
    pub fn medium() -> Self {
        PopulationConfig {
            window: SimDuration::from_secs(2 * 3600),
            arrivals_per_sec: 4.0,
            ..Default::default()
        }
    }

    /// Planet scale: an order of magnitude past the paper's ~40K/day
    /// service — around one million broadcasts in the four-hour window.
    /// Built for the sharded `repro scale` path (DESIGN.md §13); the
    /// classic per-session analyses work but take minutes of wall time.
    pub fn planet() -> Self {
        PopulationConfig { arrivals_per_sec: 70.0, ..Default::default() }
    }
}

/// The generated population with a time index for live queries.
#[derive(Debug)]
pub struct Population {
    /// All broadcasts, sorted by start time.
    pub broadcasts: Vec<Broadcast>,
    /// Configuration used to generate it.
    pub config: PopulationConfig,
    /// Minute-bucket index: bucket `i` lists indices of broadcasts live at
    /// any point within minute `i`.
    buckets: Vec<Vec<u32>>,
    /// Same index restricted to non-private broadcasts — the candidate set
    /// of every Teleport pick and directory query, precomputed so the hot
    /// sampling path never re-filters the full bucket per session.
    public_buckets: Vec<Vec<u32>>,
    /// Id → index lookup (the directory answers getBroadcasts by id).
    by_id: std::collections::HashMap<BroadcastId, u32>,
}

impl Population {
    /// Generates a population from a seed factory.
    pub fn generate(config: PopulationConfig, rngs: &RngFactory) -> Population {
        Self::generate_filtered(config, rngs, |_| true)
    }

    /// [`Population::generate`] retaining only broadcasts `keep` accepts.
    ///
    /// The filter is applied *after* each broadcast's draws, and the id
    /// counter advances for rejected broadcasts too, so the retained
    /// broadcasts are field-for-field identical to the corresponding
    /// subset of the unfiltered world — the full world is simply never
    /// materialized. Relative broadcast order (and therefore every index
    /// walk over the minute buckets) is preserved. This is what lets a
    /// crawler borrow a shard-local view of the world: a service built
    /// over the crawler-visible subset answers every crawl request with
    /// the same bytes at a fraction of the resident set (DESIGN.md §13).
    pub fn generate_filtered(
        config: PopulationConfig,
        rngs: &RngFactory,
        keep: impl Fn(&Broadcast) -> bool,
    ) -> Population {
        let mut rng = rngs.stream("workload/population");
        let window_s = config.window.as_secs_f64();
        let total_weight: f64 = CITIES.iter().map(|c| c.weight).sum();
        let mut broadcasts = Vec::new();
        let mut next_id: u64 = 1;
        for city in CITIES {
            let city_rate = config.arrivals_per_sec * city.weight / total_weight;
            // Thinned Poisson process: candidates at peak rate, accepted by
            // the local diurnal activity at the candidate instant.
            let peak = diurnal::peak_activity();
            let mut t = 0.0;
            loop {
                t += dist::exponential(&mut rng, city_rate * peak);
                if t >= window_s {
                    break;
                }
                let utc_hour = (config.utc_start_hour + t / 3600.0).rem_euclid(24.0);
                let local = (utc_hour + city.point().utc_offset_hours() as f64).rem_euclid(24.0);
                if !dist::coin(&mut rng, diurnal::activity(local) / peak) {
                    continue;
                }
                let b = Self::make_broadcast(
                    &config,
                    city,
                    local,
                    SimTime::from_micros((t * 1e6) as u64),
                    next_id,
                    &mut rng,
                );
                next_id += 1;
                if keep(&b) {
                    broadcasts.push(b);
                }
            }
        }
        broadcasts.sort_by_key(|b| b.start);
        let buckets = Self::build_index(&broadcasts, config.window);
        let public_buckets = buckets
            .iter()
            .map(|bucket| {
                bucket.iter().copied().filter(|&i| !broadcasts[i as usize].private).collect()
            })
            .collect();
        let by_id = broadcasts.iter().enumerate().map(|(i, b)| (b.id, i as u32)).collect();
        Population { broadcasts, config, buckets, public_buckets, by_id }
    }

    fn make_broadcast<R: Rng + ?Sized>(
        config: &PopulationConfig,
        city: &'static City,
        local_hour: f64,
        start: SimTime,
        id: u64,
        rng: &mut R,
    ) -> Broadcast {
        // Location: city center + a few tens of km of jitter (roughly 0.3°).
        let location = GeoPoint::new(
            city.lat + dist::normal(rng, 0.0, 0.25),
            city.lon + dist::normal(rng, 0.0, 0.25),
        );
        let zero_viewers = dist::coin(rng, config.zero_viewer_prob);
        // §4: zero-viewer broadcasts average ~2 min; the rest ~13 min with a
        // heavy tail ("some broadcasts lasting for over a day").
        let duration_s = if zero_viewers {
            dist::lognormal(rng, 95f64.ln(), 0.9).clamp(10.0, 4.0 * 3600.0)
        } else {
            // Median ~4 min, heavy tail to a day-plus: the paper's crawls
            // measured 13 min *average* for viewed broadcasts even with
            // crawl-window truncation, which needs a long tail.
            dist::lognormal(rng, 240f64.ln(), 1.5).clamp(20.0, 30.0 * 3600.0)
        };
        // Popularity: lognormal body + rare Pareto tail ("some attract
        // thousands of viewers"), modulated by local-time activity — viewers
        // are local people who are awake (Fig 2b).
        let avg_viewers = if zero_viewers {
            0.0
        } else {
            let body = dist::lognormal(rng, 3.5f64.ln(), 1.3);
            let v = if dist::coin(rng, 0.008) {
                dist::pareto(rng, 150.0, 1.1).min(25_000.0)
            } else {
                body
            };
            (v * diurnal::activity(local_hour)).max(0.05)
        };
        // Replay availability: most zero-viewer broadcasts are not kept
        // (>80% per §4); broadcasters with an audience keep replays more.
        let replay_available =
            if zero_viewers { dist::coin(rng, 0.18) } else { dist::coin(rng, 0.62) };
        let device = match dist::categorical(rng, &[0.795, 0.20, 0.005]) {
            0 => DeviceProfile::Modern,
            1 => DeviceProfile::NoBFrames,
            _ => DeviceProfile::IntraOnly,
        };
        let content = ContentClass::ALL[dist::categorical(
            rng,
            // Talking heads dominate; TV/sports rebroadcasts are common too.
            &[0.35, 0.25, 0.18, 0.12, 0.10],
        )];
        let audio = if dist::coin(rng, 0.6) { AudioBitrate::Kbps32 } else { AudioBitrate::Kbps64 };
        // Rate-control targets vary by broadcaster app version / settings;
        // intra-only encoders need far more bits for the same quality
        // ("poor efficiency coding schemes", §5.2).
        let efficiency = if device == DeviceProfile::IntraOnly { 1.7 } else { 1.0 };
        let target_bitrate_bps = (dist::lognormal(rng, (280_000f64).ln(), 0.45) * efficiency)
            .clamp(80_000.0, 1_300_000.0);
        Broadcast {
            id: BroadcastId(id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            location,
            city: city.name,
            start,
            duration: SimDuration::from_secs_f64(duration_s),
            content,
            device,
            audio,
            avg_viewers,
            replay_available,
            private: dist::coin(rng, config.private_prob),
            location_public: !dist::coin(rng, config.location_hidden_prob),
            viewer_seed: rng.gen(),
            target_bitrate_bps,
        }
    }

    fn build_index(broadcasts: &[Broadcast], window: SimDuration) -> Vec<Vec<u32>> {
        let minutes = (window.as_secs_f64() / 60.0).ceil() as usize + 1;
        let mut buckets = vec![Vec::new(); minutes];
        for (i, b) in broadcasts.iter().enumerate() {
            let first = (b.start.as_micros() / 60_000_000) as usize;
            let last = (b.end().as_micros() / 60_000_000) as usize;
            for bucket in buckets.iter_mut().take(last.min(minutes - 1) + 1).skip(first) {
                bucket.push(i as u32);
            }
        }
        buckets
    }

    /// All broadcasts live at `t`.
    pub fn live_at(&self, t: SimTime) -> Vec<&Broadcast> {
        let minute = (t.as_micros() / 60_000_000) as usize;
        match self.buckets.get(minute) {
            Some(bucket) => bucket
                .iter()
                .map(|&i| &self.broadcasts[i as usize])
                .filter(|b| b.is_live_at(t))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Broadcasts live and map-discoverable at `t` inside `rect`.
    ///
    /// Walks the precomputed public bucket (private broadcasts are never
    /// discoverable), preserving broadcast index order so directory results
    /// are identical to a scan of the full bucket.
    pub fn discoverable_in(&self, rect: &pscp_simnet::GeoRect, t: SimTime) -> Vec<&Broadcast> {
        let minute = (t.as_micros() / 60_000_000) as usize;
        match self.public_buckets.get(minute) {
            Some(bucket) => bucket
                .iter()
                .map(|&i| &self.broadcasts[i as usize])
                .filter(|b| b.discoverable_at(t) && rect.contains(&b.location))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Samples a live, non-private broadcast at `now`, weighted by its
    /// current viewer count plus one (so zero-viewer broadcasts remain
    /// reachable) — the Teleport button's selection model.
    ///
    /// One pass over the minute's public bucket accumulates a cumulative
    /// weight table; a single uniform draw then binary-searches it. That is
    /// draw-for-draw compatible with `dist::categorical` over the same
    /// candidate order (one `f64` per call), but replaces the per-call
    /// `Vec<&Broadcast>` rebuild + O(n) scan of the old Teleport pick with
    /// an O(log n) search over one compact table. Returns `None` (without
    /// consuming randomness) when nothing public is live.
    pub fn sample_live_weighted<R: Rng + ?Sized>(
        &self,
        now: SimTime,
        rng: &mut R,
    ) -> Option<&Broadcast> {
        let minute = (now.as_micros() / 60_000_000) as usize;
        let bucket = self.public_buckets.get(minute)?;
        let mut cum: Vec<(u32, f64)> = Vec::with_capacity(bucket.len());
        let mut total = 0.0f64;
        for &i in bucket {
            let b = &self.broadcasts[i as usize];
            if !b.is_live_at(now) {
                continue;
            }
            total += b.viewers_at(now) as f64 + 1.0;
            cum.push((i, total));
        }
        if cum.is_empty() {
            return None;
        }
        let u = rng.gen::<f64>() * total;
        let pos = cum.partition_point(|&(_, c)| c <= u).min(cum.len() - 1);
        Some(&self.broadcasts[cum[pos].0 as usize])
    }

    /// Look up a broadcast by id (O(1)).
    pub fn by_id(&self, id: BroadcastId) -> Option<&Broadcast> {
        self.by_id.get(&id).map(|&i| &self.broadcasts[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::GeoRect;

    /// Distribution tests are read-only; share one generated population
    /// instead of regenerating ~100K broadcasts per test.
    fn shared() -> &'static Population {
        static POP: std::sync::OnceLock<Population> = std::sync::OnceLock::new();
        POP.get_or_init(|| Population::generate(PopulationConfig::default(), &RngFactory::new(1)))
    }

    #[test]
    fn generates_plausible_count() {
        let p = shared();
        // 4h at ~7/s mean (diurnal-modulated): on the order of 100K.
        assert!(p.broadcasts.len() > 40_000, "n={}", p.broadcasts.len());
        assert!(p.broadcasts.len() < 200_000, "n={}", p.broadcasts.len());
    }

    #[test]
    fn filtered_generation_is_the_exact_subset() {
        let cfg = PopulationConfig::small();
        let rngs = RngFactory::new(9);
        let full = Population::generate(cfg.clone(), &rngs);
        let vis = Population::generate_filtered(cfg, &rngs, |b| !b.private && b.location_public);
        let expect: Vec<&Broadcast> =
            full.broadcasts.iter().filter(|b| !b.private && b.location_public).collect();
        assert!(vis.broadcasts.len() < full.broadcasts.len());
        assert_eq!(vis.broadcasts.len(), expect.len());
        for (got, want) in vis.broadcasts.iter().zip(expect) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.start, want.start);
            assert_eq!(got.duration, want.duration);
            assert_eq!(got.viewer_seed, want.viewer_seed);
        }
    }

    #[test]
    fn sorted_by_start() {
        let p = shared();
        for w in p.broadcasts.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn ids_unique() {
        let p = shared();
        let mut ids: Vec<u64> = p.broadcasts.iter().map(|b| b.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), p.broadcasts.len());
    }

    #[test]
    fn duration_distribution_matches_paper() {
        let p = shared();
        let mut durations: Vec<f64> =
            p.broadcasts.iter().map(|b| b.duration.as_secs_f64() / 60.0).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = durations[durations.len() / 2];
        // "roughly half are shorter than 4 minutes"
        assert!((2.5..6.0).contains(&median), "median={median}min");
        // "Most of the broadcasts last between 1 and 10 minutes"
        let between = durations.iter().filter(|&&d| (1.0..10.0).contains(&d)).count() as f64
            / durations.len() as f64;
        assert!(between > 0.5, "between={between}");
        // Long tail exists.
        assert!(*durations.last().unwrap() > 600.0, "max={}", durations.last().unwrap());
    }

    #[test]
    fn viewer_distribution_matches_paper() {
        let p = shared();
        let n = p.broadcasts.len() as f64;
        let zero = p.broadcasts.iter().filter(|b| b.avg_viewers == 0.0).count() as f64 / n;
        // ">10% of broadcasts have no viewers at all" — generated above the
        // paper's observed floor because ranking bias hides some from the
        // crawler.
        assert!((0.13..0.19).contains(&zero), "zero={zero}");
        let under20 = p.broadcasts.iter().filter(|b| b.avg_viewers < 20.0).count() as f64 / n;
        // "Over 90% of broadcasts have less than 20 viewers on average"
        assert!(under20 > 0.87, "under20={under20}");
        // "some attract thousands of viewers"
        assert!(p.broadcasts.iter().any(|b| b.avg_viewers > 1000.0));
    }

    #[test]
    fn zero_viewer_broadcasts_shorter() {
        let p = shared();
        let avg = |pred: &dyn Fn(&Broadcast) -> bool| {
            let xs: Vec<f64> =
                p.broadcasts.iter().filter(|b| pred(b)).map(|b| b.duration.as_secs_f64()).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let zero = avg(&|b| b.avg_viewers == 0.0);
        let nonzero = avg(&|b| b.avg_viewers > 0.0);
        // §4: "avg durations 2min vs 13 min"
        assert!(zero < 250.0, "zero avg {zero}s");
        assert!(nonzero > 450.0, "nonzero avg {nonzero}s");
        assert!(nonzero / zero > 2.5);
    }

    #[test]
    fn zero_viewer_replay_mostly_unavailable() {
        let p = shared();
        let zs: Vec<&Broadcast> = p.broadcasts.iter().filter(|b| b.avg_viewers == 0.0).collect();
        let unavailable =
            zs.iter().filter(|b| !b.replay_available).count() as f64 / zs.len() as f64;
        assert!(unavailable > 0.8, "unavailable={unavailable}");
    }

    #[test]
    fn device_mix_near_published_fractions() {
        let p = shared();
        let n = p.broadcasts.len() as f64;
        let no_b =
            p.broadcasts.iter().filter(|b| b.device == DeviceProfile::NoBFrames).count() as f64 / n;
        assert!((no_b - 0.20).abs() < 0.02, "no_b={no_b}");
        let intra = p.broadcasts.iter().filter(|b| b.device == DeviceProfile::IntraOnly).count();
        assert!(intra > 0);
    }

    #[test]
    fn live_at_index_consistent() {
        let p = Population::generate(PopulationConfig::small(), &RngFactory::new(9));
        for s in [0u64, 300, 600, 900] {
            let t = SimTime::from_secs(s);
            let live = p.live_at(t);
            let brute: Vec<&Broadcast> = p.broadcasts.iter().filter(|b| b.is_live_at(t)).collect();
            assert_eq!(live.len(), brute.len(), "t={s}");
        }
    }

    #[test]
    fn weighted_sampler_matches_bruteforce_categorical() {
        // The sampler must be draw-for-draw compatible with filtering the
        // live bucket and calling dist::categorical on the weights — the
        // Teleport pick it replaced.
        let p = Population::generate(PopulationConfig::small(), &RngFactory::new(17));
        let f = RngFactory::new(17);
        let mut fast = f.stream("sampler-a");
        let mut brute = f.stream("sampler-a");
        for s in [60u64, 300, 600, 900, 1100] {
            let t = SimTime::from_secs(s);
            let picked = p.sample_live_weighted(t, &mut fast);
            let live: Vec<&Broadcast> = p.live_at(t).into_iter().filter(|b| !b.private).collect();
            let expected = if live.is_empty() {
                None
            } else {
                let weights: Vec<f64> = live.iter().map(|b| b.viewers_at(t) as f64 + 1.0).collect();
                Some(live[dist::categorical(&mut brute, &weights)])
            };
            assert_eq!(picked.map(|b| b.id), expected.map(|b| b.id), "t={s}s");
        }
    }

    #[test]
    fn weighted_sampler_never_returns_private_or_dead() {
        let p = Population::generate(PopulationConfig::small(), &RngFactory::new(18));
        let mut rng = RngFactory::new(18).stream("sampler-b");
        let t = SimTime::from_secs(600);
        for _ in 0..200 {
            let b = p.sample_live_weighted(t, &mut rng).expect("mid-window has live casts");
            assert!(b.is_live_at(t) && !b.private);
        }
    }

    #[test]
    fn discoverable_filters_privacy_and_rect() {
        let p = shared();
        let t = SimTime::from_secs(3600);
        let world = p.discoverable_in(&GeoRect::WORLD, t);
        assert!(!world.is_empty());
        assert!(world.iter().all(|b| !b.private && b.location_public));
        // A rect over the Pacific has almost nothing.
        let pacific = GeoRect::new(-10.0, -160.0, 10.0, -140.0);
        assert!(p.discoverable_in(&pacific, t).len() < world.len() / 20);
    }

    #[test]
    fn concurrency_in_deep_crawl_range() {
        let p = shared();
        // Mid-window live count should be in the paper's observed 1K-4K
        // discoverable range (give or take calibration).
        let t = SimTime::from_secs(2 * 3600);
        let live = p.live_at(t).iter().filter(|b| b.discoverable_at(t)).count();
        assert!((800..6000).contains(&live), "live={live}");
    }

    #[test]
    fn geography_is_clumpy() {
        // Fig 1b's premise: activity concentrates in a minority of areas.
        let p = shared();
        let t = SimTime::from_secs(3600);
        let live = p.discoverable_in(&GeoRect::WORLD, t);
        // Split the world into an 8x8 grid; the top half of cells should
        // hold at least 80% of broadcasts.
        let mut counts = vec![0usize; 64];
        for b in &live {
            let col = (((b.location.lon + 180.0) / 45.0) as usize).min(7);
            let row = (((b.location.lat + 90.0) / 22.5) as usize).min(7);
            counts[row * 8 + col] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_half: usize = counts[..32].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(top_half as f64 / total as f64 > 0.8);
    }

    #[test]
    fn determinism_same_seed() {
        let a = Population::generate(PopulationConfig::small(), &RngFactory::new(42));
        let b = Population::generate(PopulationConfig::small(), &RngFactory::new(42));
        assert_eq!(a.broadcasts.len(), b.broadcasts.len());
        for (x, y) in a.broadcasts.iter().zip(&b.broadcasts) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.start, y.start);
            assert_eq!(x.avg_viewers, y.avg_viewers);
        }
    }
}
