//! Broadcast title generation.
//!
//! §4: "It would be nice to know the contents of the most popular
//! broadcasts but the text descriptions are typically not very
//! informative." Titles here reproduce that frustration: most are empty,
//! emoji runs, greetings, or single vague words; only a minority describe
//! content. Deterministic per broadcast id.

/// Title style classes, in rough order of (un)informativeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TitleStyle {
    /// No title at all.
    Empty,
    /// Emoji / decoration only.
    Emoji,
    /// A greeting or phatic opener.
    Greeting,
    /// A vague single word.
    Vague,
    /// Something actually descriptive.
    Descriptive,
}

const EMOJI: &[&str] = &["🔴🔴🔴", "❤️❤️", "🎥", "🌙✨", "🔥🔥🔥", "😎", "🎶🎶"];
const GREETINGS: &[&str] = &[
    "hi guys",
    "hello world",
    "come say hi",
    "first scope!",
    "good morning",
    "can't sleep",
    "ask me anything",
    "just chilling",
];
const VAGUE: &[&str] =
    &["live", "late night", "vibes", "random", "bored", "test", "...", "untitled"];
const DESCRIPTIVE: &[&str] = &[
    "sunset over the Bosphorus",
    "cooking dinner — köfte tonight",
    "walking through Shibuya crossing",
    "street musicians downtown",
    "derby match on TV, join!",
    "driving to work, morning traffic",
    "painting session: watercolor basics",
    "airport spotting, heavy arrivals",
];

/// Style mix calibrated to "typically not very informative".
const STYLE_WEIGHTS: &[(TitleStyle, u64)] = &[
    (TitleStyle::Empty, 25),
    (TitleStyle::Emoji, 15),
    (TitleStyle::Greeting, 25),
    (TitleStyle::Vague, 22),
    (TitleStyle::Descriptive, 13),
];

/// Returns the deterministic title (and its style) for a broadcast id.
pub fn title_for(broadcast_id: u64) -> (TitleStyle, String) {
    let h = splitmix(broadcast_id);
    let total: u64 = STYLE_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut pick = h % total;
    let mut style = TitleStyle::Empty;
    for &(s, w) in STYLE_WEIGHTS {
        if pick < w {
            style = s;
            break;
        }
        pick -= w;
    }
    let idx = (splitmix(h) % 64) as usize;
    let text = match style {
        TitleStyle::Empty => String::new(),
        TitleStyle::Emoji => EMOJI[idx % EMOJI.len()].to_string(),
        TitleStyle::Greeting => GREETINGS[idx % GREETINGS.len()].to_string(),
        TitleStyle::Vague => VAGUE[idx % VAGUE.len()].to_string(),
        TitleStyle::Descriptive => DESCRIPTIVE[idx % DESCRIPTIVE.len()].to_string(),
    };
    (style, text)
}

/// Whether a title usefully describes content (the paper's complaint is
/// that this is rare).
pub fn is_informative(style: TitleStyle) -> bool {
    style == TitleStyle::Descriptive
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(title_for(42), title_for(42));
        assert_ne!(title_for(1).1, title_for(2).1);
    }

    #[test]
    fn mostly_uninformative() {
        let informative = (0..10_000u64).filter(|&id| is_informative(title_for(id).0)).count();
        let frac = informative as f64 / 10_000.0;
        assert!((0.08..0.20).contains(&frac), "informative fraction {frac}");
    }

    #[test]
    fn style_mix_covers_all() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000u64 {
            seen.insert(format!("{:?}", title_for(id).0));
        }
        assert_eq!(seen.len(), 5, "all styles appear");
    }

    #[test]
    fn empty_style_has_empty_text() {
        for id in 0..2000u64 {
            let (style, text) = title_for(id);
            if style == TitleStyle::Empty {
                assert!(text.is_empty());
                return;
            }
        }
        panic!("no empty titles in 2000 draws");
    }
}
