//! Viewer-count trajectories.
//!
//! The crawler samples viewer counts over a broadcast's life via
//! `getBroadcasts` (§4), so counts must be a *function of time*, not one
//! number: a ramp-up as the broadcast gets ranked, a noisy plateau, and a
//! decline near the end. The trajectory is deterministic given the
//! broadcast's seed, so repeated queries are consistent.

use pscp_simnet::SimTime;

/// Smooth arch shape over normalized progress u ∈ [0,1], scaled so its mean
/// is 1 (hence time-averaged viewers equal `avg`).
fn shape(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    // Fast ramp to ~1.3 by u=0.2, slow decay to ~0.5 at the end.
    let ramp = 1.0 - (-u * 12.0).exp();
    let decay = 1.0 - 0.55 * u * u;
    // Normalizing constant measured over the unit interval.
    ramp * decay / 0.77
}

/// Deterministic multiplicative noise in [0.7, 1.3] from the seed and the
/// minute index (stable within a minute, like a ranked list refresh).
fn noise(seed: u64, t: SimTime) -> f64 {
    let minute = t.as_micros() / 60_000_000;
    let mut z = seed ^ minute.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    0.7 + 0.6 * (z as f64 / u64::MAX as f64)
}

/// Viewer count for a broadcast with time-averaged popularity `avg`, at
/// normalized progress `progress`, noise-seeded by `seed` at instant `t`.
pub fn viewers_at(avg: f64, progress: f64, seed: u64, t: SimTime) -> u32 {
    let v = avg * shape(progress) * noise(seed, t);
    v.round().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_mean_is_about_one() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| shape(i as f64 / n as f64)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn shape_ramps_then_decays() {
        assert!(shape(0.0) < 0.2);
        assert!(shape(0.3) > 1.0);
        assert!(shape(1.0) < shape(0.4));
    }

    #[test]
    fn noise_bounded_and_deterministic() {
        for seed in [1u64, 99, 12345] {
            for s in [0u64, 30, 61, 3600] {
                let t = SimTime::from_secs(s);
                let n = noise(seed, t);
                assert!((0.7..=1.3).contains(&n), "n={n}");
                assert_eq!(n, noise(seed, t));
            }
        }
    }

    #[test]
    fn noise_stable_within_minute() {
        let a = noise(5, SimTime::from_secs(60));
        let b = noise(5, SimTime::from_secs(119));
        assert_eq!(a, b);
        let c = noise(5, SimTime::from_secs(120));
        assert_ne!(a, c);
    }

    #[test]
    fn viewers_track_average() {
        // Sampling the trajectory across the broadcast should come out near
        // the nominal average.
        let avg = 50.0;
        let mut total = 0.0;
        let n = 1000;
        for i in 0..n {
            let progress = i as f64 / n as f64;
            let t = SimTime::from_secs(i * 6);
            total += viewers_at(avg, progress, 42, t) as f64;
        }
        let measured = total / n as f64;
        assert!((measured - avg).abs() < avg * 0.15, "measured={measured}");
    }

    #[test]
    fn viewers_at_least_one_for_popular() {
        assert!(viewers_at(0.5, 0.0, 1, SimTime::ZERO) >= 1);
    }
}
