//! Crawl the synthetic service the way §4 of the paper crawled Periscope:
//! a deep quadtree crawl to find the active areas, then a targeted crawl
//! over the top-64 areas with four accounts, then the usage-pattern
//! statistics.
//!
//! Run with: `cargo run --release --example crawl_usage_patterns`

use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::crawler::analysis::usage_stats;

fn main() {
    let lab = Lab::new(LabConfig::medium(7));

    println!("=== deep crawl (recursive quadtree zoom) ===");
    let deep = lab.deep_crawl_at(14.0);
    println!("map queries:        {}", deep.steps.len());
    println!("broadcasts found:   {}", deep.discovered.len());
    println!("crawl duration:     {:.1} min", deep.duration().as_secs_f64() / 60.0);
    println!("rate limited:       {} times", deep.rate_limited);
    let conc = deep.concentration_curve();
    if let Some((_, frac)) = conc.iter().find(|(a, _)| *a >= 0.5) {
        println!("top half of areas:  {:.0}% of broadcasts (paper: >=80%)", frac * 100.0);
    }

    println!("\n=== targeted crawl (top areas, 4 accounts) ===");
    let crawl = lab.targeted_crawl_at(14.0);
    println!("rounds completed:   {}", crawl.rounds);
    println!("round duration:     {:.0} s (paper: ~50 s)", crawl.round_duration.as_secs_f64());
    println!("broadcasts tracked: {}", crawl.observations.len());

    let ended = crawl.ended_broadcasts();
    println!("ended during crawl: {}", ended.len());
    if let Some(stats) = usage_stats(&ended) {
        println!("\n=== §4 usage patterns (paper values in parentheses) ===");
        println!("median duration:        {:.1} min   (~4)", stats.median_duration_min);
        println!("fraction <20 viewers:   {:.3}      (>0.9)", stats.frac_under_20_viewers);
        println!("fraction zero viewers:  {:.3}      (>0.1)", stats.frac_zero_viewers);
        println!(
            "zero-viewer durations:  {:.1} min vs viewed {:.1} min   (2 vs 13)",
            stats.zero_viewer_avg_duration_min, stats.viewed_avg_duration_min
        );
        println!(
            "duration~popularity r:  {:.3}      (very weak)",
            stats.duration_popularity_correlation
        );
    }
}
