//! Regenerate the paper's Figure 7: average power draw of the seven
//! scenarios over WiFi and LTE, from the component power model, next to the
//! paper's measured bars.
//!
//! Run with: `cargo run --example energy_profile`

use periscope_repro::energy::model::{PowerModel, Radio};
use periscope_repro::energy::scenarios::{figure7, scenario_workload, Scenario};

fn main() {
    let model = PowerModel::default();

    println!(
        "{:<28} {:>11} {:>11} {:>12} {:>12}",
        "scenario", "WiFi (mW)", "LTE (mW)", "paper WiFi", "paper LTE"
    );
    for (scenario, wifi, lte) in figure7(&model) {
        let (pw, pl) = scenario.paper_mw();
        println!("{:<28} {:>11.0} {:>11.0} {:>12.0} {:>12.0}", scenario.label(), wifi, lte, pw, pl);
    }

    // The §5.3 decomposition of the chat-on surprise.
    println!("\nWhy does chat cost so much? (WiFi, HLS viewing)");
    let off = scenario_workload(Scenario::VideoHlsChatOff);
    let on = scenario_workload(Scenario::VideoHlsChatOn);
    let p_off = model.power_mw(&off, Radio::Wifi);
    let p_on = model.power_mw(&on, Radio::Wifi);
    println!("  chat off: {p_off:.0} mW");
    println!("  chat on:  {p_on:.0} mW  (+{:.0})", p_on - p_off);
    println!(
        "  drivers:  traffic {} -> {} Mbps (uncached profile pictures),",
        off.traffic_mbps, on.traffic_mbps
    );
    println!("            CPU/GPU clocks x{:.2} (DVFS reacting to image decoding)", on.clock_ratio);

    // The mitigation the paper suggests: cache pictures / allow disabling.
    let mut mitigated = on;
    mitigated.traffic_mbps = 0.9; // cached pictures: mostly chat JSON again
    mitigated.clock_ratio = 1.1;
    let p_fixed = model.power_mw(&mitigated, Radio::Wifi);
    println!("  with picture caching (modelled): {p_fixed:.0} mW — saves {:.0} mW", p_on - p_fixed);
}
