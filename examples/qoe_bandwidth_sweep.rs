//! The §5.1 bandwidth-limit sweep: impose `tc`-style limits on the viewer
//! path and watch stall ratio and join time degrade below ~2 Mbps —
//! Figures 3(b) and 4(a) of the paper in miniature.
//!
//! Run with: `cargo run --release --example qoe_bandwidth_sweep`

use periscope_repro::client::device::NetworkSetup;
use periscope_repro::client::session::SessionConfig;
use periscope_repro::client::{Teleport, TeleportConfig};
use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::qoe::SessionDataset;
use periscope_repro::stats::BoxplotSummary;

fn main() {
    let mut lab = Lab::new(LabConfig::small(99));
    let limits = [0.5, 1.0, 2.0, 4.0, 8.0, f64::INFINITY];
    let sessions_per_point = 10;

    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>12}",
        "limit", "n", "stall-ratio", "join median", "join p75"
    );
    let rngs = *lab.rngs();
    let svc = lab.service();
    for (i, &limit) in limits.iter().enumerate() {
        let network = if limit.is_finite() {
            NetworkSetup::finland_limited(limit)
        } else {
            NetworkSetup::finland_unlimited()
        };
        let tp = Teleport::new(svc, rngs.child(&format!("sweep-{i}")));
        let outcomes = tp.run_dataset(&TeleportConfig {
            sessions: sessions_per_point,
            session: SessionConfig { network, ..Default::default() },
            ..Default::default()
        });
        // Figures 3(b)/4 report RTMP streams only; HLS mega-broadcasts on a
        // starved link would otherwise dominate the table.
        let refs: Vec<&_> = outcomes
            .iter()
            .filter(|o| o.protocol == periscope_repro::service::select::Protocol::Rtmp)
            .collect();
        let ratios = SessionDataset::stall_ratios(&refs);
        let joins = SessionDataset::join_times_s(&refs);
        let ratio_median = BoxplotSummary::of(&ratios).map(|b| b.median).unwrap_or(f64::NAN);
        let join_box = BoxplotSummary::of(&joins).ok();
        println!(
            "{:>10} {:>8} {:>14.3} {:>14.2} {:>12.2}",
            if limit.is_finite() { format!("{limit} Mbps") } else { "unlimited".to_string() },
            refs.len(),
            ratio_median,
            join_box.as_ref().map(|b| b.median).unwrap_or(f64::NAN),
            join_box.as_ref().map(|b| b.q3).unwrap_or(f64::NAN),
        );
    }
    println!("\nBelow ~2 Mbps join time and stalling climb steeply (paper Fig 3b/4a);");
    println!("the video itself is only 200-400 kbps — the gap is chat and burstiness (§5.1).");
}
