//! Quickstart: spin up a small synthetic Periscope world, watch a handful
//! of broadcasts the way the paper's automation did, and print the QoE
//! numbers that come out.
//!
//! Run with: `cargo run --example quickstart`

use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::service::select::Protocol;

fn main() {
    // Everything derives from one seed; change it and the whole world
    // (broadcasts, viewers, network weather) changes with it.
    let mut lab = Lab::new(LabConfig::small(42));

    println!("Running 20 automated 60-second viewing sessions...\n");
    let report = lab.run_viewing_sessions(20);

    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>10}  server",
        "protocol", "join(s)", "stalls", "stall-ratio", "viewers"
    );
    for s in &report.sessions {
        println!(
            "{:<10} {:>8} {:>10} {:>12.3} {:>10}  {}",
            s.protocol.name(),
            s.join_time_s().map(|j| format!("{j:.2}")).unwrap_or_else(|| "-".to_string()),
            s.meta.n_stalls,
            s.stall_ratio(),
            s.viewers_at_join,
            s.server,
        );
    }

    let rtmp = report.sessions.iter().filter(|s| s.protocol == Protocol::Rtmp).count();
    let hls = report.sessions.len() - rtmp;
    println!("\n{rtmp} RTMP sessions, {hls} HLS sessions");
    println!("(popular broadcasts fall back to HLS via the CDN, as in §5 of the paper)");
}
