//! The corners of the service the headline figures skip: replays, private
//! (RTMPS) broadcasts, and the mitmproxy-style API reconnaissance that
//! produced the paper's Table 1.
//!
//! Run with: `cargo run --release --example replay_and_private`

use periscope_repro::client::session::SessionConfig;
use periscope_repro::client::{replay_session, rtmp_session};
use periscope_repro::crawler::tap::ApiTap;
use periscope_repro::media::capture::FlowKind;
use periscope_repro::proto::tls::TlsChannel;
use periscope_repro::service::api::ApiRequest;
use periscope_repro::service::{PeriscopeService, ServiceConfig};
use periscope_repro::simnet::{GeoPoint, GeoRect, RngFactory, SimDuration, SimTime};
use periscope_repro::workload::population::{Population, PopulationConfig};

fn main() {
    let rngs = RngFactory::new(777);
    let population = Population::generate(PopulationConfig::small(), &rngs.child("world"));
    let mut service = PeriscopeService::new(population, ServiceConfig::default());

    // --- 1. API reconnaissance through the tap (Table 1) -----------------
    println!("=== mitmproxy-style API reconnaissance ===");
    {
        let mut tap = ApiTap::new(&mut service);
        let loc = GeoPoint::new(60.19, 24.83);
        let mut t = SimTime::from_secs(30);
        let world = ApiRequest::MapGeoBroadcastFeed { rect: GeoRect::WORLD, include_replay: false };
        tap.handle("analyst", &world.to_http("tok"), t, &loc);
        t += SimDuration::from_secs(2);
        // Burst without pacing to see the rate limiter bite.
        for _ in 0..12 {
            tap.handle("analyst", &world.to_http("tok"), t, &loc);
        }
        for (name, example) in tap.discovered_commands() {
            let example =
                if example.len() > 56 { format!("{}…", &example[..56]) } else { example };
            println!("  {name:<22} {example}");
        }
        println!("  429s observed: {} (the crawler must pace itself)", tap.rate_limited_count());
    }

    // --- 2. A private broadcast over RTMPS --------------------------------
    println!("\n=== private broadcast (RTMPS) ===");
    let t = SimTime::from_secs(400);
    let mut private = service
        .population
        .live_at(t)
        .into_iter()
        .max_by_key(|b| b.viewers_at(t))
        .expect("live broadcasts exist")
        .clone();
    private.private = true;
    let out = rtmp_session::run(&private, t, &SessionConfig::default(), &rngs.child("priv"));
    println!("  server:      {}", out.server);
    println!("  join time:   {:.2} s (the app has the keys)", out.join_time_s().unwrap());
    let flow = out.capture.flow_of_kind(FlowKind::Rtmp).unwrap();
    let parse = periscope_repro::media::analysis::analyze_rtmp_flow(flow);
    println!(
        "  capture dissects as RTMP?  {}",
        if parse.is_ok() { "yes" } else { "no — ciphertext" }
    );
    let mut tls = TlsChannel::new(private.viewer_seed);
    let decrypted = tls.open_all(flow.byte_stream()).map(|p| p.len()).unwrap_or(0);
    println!(
        "  with the session key: {} plaintext bytes recovered from {} wire bytes",
        decrypted,
        flow.byte_count()
    );

    // --- 3. Replay (VOD) playback ----------------------------------------
    println!("\n=== replay (VOD) session ===");
    let replayable = service
        .population
        .broadcasts
        .iter()
        .find(|b| b.replay_available && !b.private && b.duration > SimDuration::from_secs(90))
        .expect("a replayable broadcast exists")
        .clone();
    let out = replay_session::run(
        &replayable,
        SimTime::from_secs(3000),
        &SessionConfig::default(),
        &rngs.child("replay"),
    )
    .expect("replay exists");
    println!("  source broadcast: {} from {}", replayable.id.as_string(), replayable.city);
    println!("  join time:  {:.2} s", out.join_time_s().unwrap());
    println!("  stalls:     {} (VOD pulls ahead of playback)", out.meta.n_stalls);
    println!(
        "  stream rate: {:.0} kbps — §5.3: replay power equals live because traffic does",
        out.capture.rate_of_kinds(&[FlowKind::HlsHttp]) / 1e3
    );
}
