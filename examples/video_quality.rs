//! Video-quality analysis the way §5.2 did it: run viewing sessions,
//! reconstruct the streams from the packet captures (wireshark/libav
//! stand-in), and report bitrate, QP, GOP patterns and HLS segment
//! durations.
//!
//! Run with: `cargo run --release --example video_quality`

use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::media::analysis::GopClass;
use periscope_repro::qoe::delivery::analyze_session;

fn main() {
    let mut lab = Lab::new(LabConfig::small(2024));
    let report = lab.run_viewing_sessions(24);

    println!(
        "{:<6} {:>12} {:>8} {:>8} {:>10} {:>8}  GOP",
        "proto", "bitrate", "avg QP", "fps", "I-interval", "frames"
    );
    let mut analyzed = Vec::new();
    for outcome in &report.sessions {
        let Some(r) = analyze_session(outcome) else { continue };
        println!(
            "{:<6} {:>9.0} bps {:>8.1} {:>8.1} {:>10.1} {:>8}  {:?}",
            outcome.protocol.name(),
            r.bitrate_bps,
            r.avg_qp,
            r.fps,
            r.i_interval,
            r.n_frames,
            r.gop,
        );
        analyzed.push(r);
    }

    let n = analyzed.len().max(1);
    let in_range =
        analyzed.iter().filter(|r| (200_000.0..=400_000.0).contains(&r.bitrate_bps)).count();
    let ip_only = analyzed.iter().filter(|r| r.gop == GopClass::IpOnly).count();
    println!("\n{in_range}/{n} streams in the paper's typical 200-400 kbps band");
    println!(
        "{:.0}% I+P-only encodings (paper: ~20% — older devices without B-frame support)",
        100.0 * ip_only as f64 / n as f64
    );
    let seg: Vec<f64> =
        analyzed.iter().flat_map(|r| r.segment_durations_s.iter().copied()).collect();
    if !seg.is_empty() {
        let modal = seg.iter().filter(|&&d| (3.3..=3.9).contains(&d)).count();
        println!(
            "HLS segments: {} seen, {:.0}% at ~3.6 s (paper: 60%), range {:.1}-{:.1} s",
            seg.len(),
            100.0 * modal as f64 / seg.len() as f64,
            seg.iter().cloned().fold(f64::INFINITY, f64::min),
            seg.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
    }
}
