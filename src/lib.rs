//! # periscope-repro
//!
//! Umbrella crate for the reproduction of *"A First Look at Quality of Mobile
//! Live Streaming Experience: the Case of Periscope"* (Siekkinen, Masala,
//! Kämäräinen — ACM IMC 2016).
//!
//! The original study measured a live service that no longer exists. This
//! workspace rebuilds both sides of the experiment as a deterministic
//! discrete-event simulation:
//!
//! * the Periscope-like platform itself ([`service`]) — geo-indexed broadcast
//!   discovery API with rate limiting, RTMP ingest, popularity-triggered HLS
//!   distribution through a CDN, chat with profile-picture side traffic;
//! * the measurement apparatus ([`crawler`], [`client`]) — deep/targeted map
//!   crawls, automated 60-second "Teleport" viewing sessions, packet capture;
//! * the analysis pipeline ([`qoe`], [`media`], [`energy`], [`stats`]) —
//!   stall/latency QoE metrics, reconstruction-based video quality analysis,
//!   and a smartphone power model.
//!
//! Each paper figure and table has a corresponding experiment in
//! [`core::experiments`]; see `DESIGN.md` for the full index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use periscope_repro::core::{Lab, LabConfig};
//!
//! // A small world: everything is driven by one seed, so runs reproduce.
//! let mut lab = Lab::new(LabConfig::small(42));
//! let report = lab.run_viewing_sessions(20);
//! assert_eq!(report.sessions.len(), 20);
//! ```

pub use pscp_client as client;
pub use pscp_core as core;
pub use pscp_crawler as crawler;
pub use pscp_energy as energy;
pub use pscp_media as media;
pub use pscp_obs as obs;
pub use pscp_proto as proto;
pub use pscp_qoe as qoe;
pub use pscp_service as service;
pub use pscp_simnet as simnet;
pub use pscp_simnet::par;
pub use pscp_stats as stats;
pub use pscp_workload as workload;
