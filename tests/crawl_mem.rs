//! Crawl memory discipline: the plural crawl methods hold one world per
//! in-flight crawl, so each must borrow the *crawler-visible* view, not a
//! full population. This suite pins both halves of that fix:
//!
//! 1. observational equivalence — a deep crawl over the pruned world
//!    discovers exactly what it discovers over the full world (crawls only
//!    see public, located broadcasts through the HTTP API);
//! 2. an allocation-count regression gate — building the crawl view must
//!    allocate measurably less than building the full world, so the scale
//!    tiers can't silently go back to multiplying full-world peak RSS.

use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::crawler::DeepCrawl;
use periscope_repro::obs::alloc_count::{self, CountingAlloc};
use periscope_repro::simnet::SimTime;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A crawl's complete observable output, comparable across worlds.
fn crawl_fingerprint(crawl: &DeepCrawl) -> (usize, Vec<u64>, usize, u32) {
    let mut ids: Vec<u64> = crawl.discovered.iter().map(|d| d.0).collect();
    ids.sort_unstable();
    (crawl.steps.len(), ids, crawl.observations.len(), crawl.rate_limited)
}

#[test]
fn pruned_world_crawls_are_observationally_identical() {
    let lab = Lab::new(LabConfig::small(2016));
    for hour in [2.0, 14.0] {
        let mut full = lab.service_at_hour(hour);
        let mut pruned = lab.crawl_service_at_hour(hour);
        assert!(
            pruned.population.broadcasts.len() < full.population.broadcasts.len(),
            "pruning must actually drop hidden broadcasts"
        );
        let cfg = lab.deep_config();
        let start = SimTime::from_secs(120);
        let a = DeepCrawl::run(&mut full, &cfg, start);
        let b = DeepCrawl::run(&mut pruned, &cfg, start);
        assert_eq!(
            crawl_fingerprint(&a),
            crawl_fingerprint(&b),
            "crawl at hour {hour} diverged between full and pruned worlds"
        );
    }
}

#[test]
fn crawl_view_allocates_measurably_less_than_full_world() {
    assert!(alloc_count::installed(), "counting allocator must be this binary's global allocator");
    let lab = Lab::new(LabConfig::small(7));
    // Warm any lazy one-time state so the measured runs are steady-state.
    drop(lab.service_at_hour(8.0));
    drop(lab.crawl_service_at_hour(8.0));
    let (full_bytes, full) = alloc_count::counted_bytes(|| lab.service_at_hour(8.0));
    let (crawl_bytes, pruned) = alloc_count::counted_bytes(|| lab.crawl_service_at_hour(8.0));
    assert!(pruned.population.broadcasts.len() < full.population.broadcasts.len());
    // ~18% of broadcasts are private or location-hidden. Allocation
    // *events* barely move (Vec growth is amortized), so the gate is on
    // allocated bytes: demand at least a 5% reduction so the crawl view
    // can't regress into carrying the full world again unnoticed.
    assert!(
        crawl_bytes * 100 <= full_bytes * 95,
        "crawl view heap bytes ({crawl_bytes}) not measurably below full world ({full_bytes})"
    );
}
