//! Whole-stack determinism: the same seed must reproduce identical
//! datasets, crawls and rendered figures (DESIGN.md §6).

use periscope_repro::core::{experiments, Lab, LabConfig};

#[test]
fn session_dataset_is_bit_reproducible() {
    let run = |seed: u64| {
        let mut lab = Lab::new(LabConfig::small(seed));
        let dataset = lab.session_dataset();
        dataset
            .sessions
            .iter()
            .map(|s| {
                (
                    s.broadcast_id,
                    s.protocol,
                    s.meta.n_stalls,
                    s.capture.total_bytes(),
                    s.join_time_s().map(|j| (j * 1e6) as u64),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12), "different seeds produce different worlds");
}

#[test]
fn deep_crawl_is_reproducible() {
    let crawl = |seed: u64| {
        let lab = Lab::new(LabConfig::small(seed));
        let c = lab.deep_crawl_at(14.0);
        (c.steps.len(), c.discovered.len(), c.rate_limited)
    };
    assert_eq!(crawl(3), crawl(3));
}

#[test]
fn rendered_figures_are_identical_across_runs() {
    let render = |id: &str| {
        let mut lab = Lab::new(LabConfig::small(77));
        let exp = experiments::by_id(id).expect("experiment exists");
        (exp.run)(&mut lab).render()
    };
    for id in ["fig3a", "fig7", "table-protocol"] {
        assert_eq!(render(id), render(id), "experiment {id}");
    }
}

/// Per-session fingerprint covering every scalar metric plus the capture
/// byte count, so a single diverging draw anywhere in a session shows up.
fn dataset_fingerprint(threads: usize, seed: u64) -> Vec<String> {
    let mut config = LabConfig::small(seed);
    config.threads = threads;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    dataset
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{:?} {:?} {:?} {} {} {} {:?} {:?}",
                s.broadcast_id,
                s.protocol,
                s.device,
                s.viewers_at_join,
                s.meta.n_stalls,
                s.capture.total_bytes(),
                s.join_time_s().map(|j| (j * 1e6) as u64),
                s.meta.playback_latency_s.map(|l| (l * 1e6) as u64),
            )
        })
        .collect()
}

#[test]
fn parallel_dataset_matches_serial() {
    for seed in [11, 77] {
        let serial = dataset_fingerprint(1, seed);
        let parallel = dataset_fingerprint(8, seed);
        assert_eq!(serial, parallel, "seed {seed}: 8 threads diverged from serial");
    }
}

#[test]
fn figures_invariant_under_thread_count() {
    let render = |threads: usize, id: &str| {
        let mut config = LabConfig::small(99);
        config.threads = threads;
        let mut lab = Lab::new(config);
        let exp = experiments::by_id(id).expect("experiment exists");
        (exp.run)(&mut lab).render()
    };
    // threads=1 is the true serial path; comparing 2 and 8 against it (not
    // against each other) also validates the crawl and capture-analysis
    // fan-outs behind fig1a/fig5 against the serial baseline.
    for id in ["fig1a", "fig3b", "fig5"] {
        let serial = render(1, id);
        for threads in [2, 8] {
            assert_eq!(
                serial,
                render(threads, id),
                "experiment {id}: {threads} threads diverged from serial"
            );
        }
    }
}
