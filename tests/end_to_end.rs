//! End-to-end checks that the paper's five key findings (§1) hold on the
//! reproduction at small scale.

use periscope_repro::client::device::NetworkSetup;
use periscope_repro::client::session::SessionConfig;
use periscope_repro::client::{Teleport, TeleportConfig};
use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::media::capture::FlowKind;
use periscope_repro::qoe::delivery::{analyze_session, delivery_latency_s};
use periscope_repro::qoe::SessionDataset;
use periscope_repro::service::select::Protocol;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Finding 2+3: HLS is used for popular broadcasts and has longer delivery
/// latency but typically fewer stalls than RTMP.
#[test]
fn hls_for_popular_with_higher_latency() {
    let mut lab = Lab::new(LabConfig::small(21));
    let dataset = lab.session_dataset();
    let rtmp = dataset.unlimited(Protocol::Rtmp);
    let hls = dataset.unlimited(Protocol::Hls);
    assert!(!rtmp.is_empty() && !hls.is_empty(), "both protocols represented");
    // Protocol follows popularity.
    let rtmp_viewers = mean(&rtmp.iter().map(|s| s.viewers_at_join as f64).collect::<Vec<_>>());
    let hls_viewers = mean(&hls.iter().map(|s| s.viewers_at_join as f64).collect::<Vec<_>>());
    assert!(hls_viewers > rtmp_viewers * 2.0, "hls={hls_viewers} rtmp={rtmp_viewers}");
    // Delivery latency (capture-derived) much larger on HLS.
    let lat = |group: &[&periscope_repro::client::SessionOutcome]| {
        let xs: Vec<f64> = group.iter().take(10).filter_map(|s| delivery_latency_s(s)).collect();
        mean(&xs)
    };
    let rtmp_lat = lat(&rtmp);
    let hls_lat = lat(&hls);
    assert!(rtmp_lat < 1.0, "rtmp delivery latency {rtmp_lat}");
    assert!(hls_lat > 3.0, "hls delivery latency {hls_lat}");
}

/// Finding 1: ~2 Mbps is the access-bandwidth boundary below which startup
/// latency and stalling clearly increase.
#[test]
fn two_mbps_is_the_qoe_boundary() {
    let mut lab = Lab::new(LabConfig::small(22));
    let rngs = *lab.rngs();
    let svc = lab.service();
    let run_at =
        |svc: &mut periscope_repro::service::PeriscopeService, label: &str, mbps: Option<f64>| {
            let network = match mbps {
                Some(m) => NetworkSetup::finland_limited(m),
                None => NetworkSetup::finland_unlimited(),
            };
            let tp = Teleport::new(svc, rngs.child(label));
            tp.run_dataset(&TeleportConfig {
                sessions: 12,
                session: SessionConfig { network, ..Default::default() },
                ..Default::default()
            })
        };
    let slow = run_at(svc, "slow", Some(0.5));
    let fast = run_at(svc, "fast", None);
    let refs = |v: &[periscope_repro::client::SessionOutcome]| -> (f64, f64) {
        let r: Vec<&_> = v.iter().collect();
        (mean(&SessionDataset::stall_ratios(&r)), mean(&SessionDataset::join_times_s(&r)))
    };
    let (slow_stall, slow_join) = refs(&slow);
    let (fast_stall, fast_join) = refs(&fast);
    assert!(
        slow_stall > fast_stall + 0.05,
        "stalling should jump below the boundary: slow={slow_stall} fast={fast_stall}"
    );
    assert!(
        slow_join > fast_join * 2.0,
        "join time should jump: slow={slow_join} fast={fast_join}"
    );
}

/// Finding 4: video bitrate and quality are similar across protocols,
/// typically 200-400 kbps.
#[test]
fn bitrates_similar_across_protocols() {
    let mut lab = Lab::new(LabConfig::small(23));
    let dataset = lab.session_dataset();
    let rates = |protocol: Protocol| {
        dataset
            .unlimited(protocol)
            .into_iter()
            .take(10)
            .filter_map(analyze_session)
            .map(|r| r.bitrate_bps)
            .collect::<Vec<_>>()
    };
    let rtmp = rates(Protocol::Rtmp);
    let hls = rates(Protocol::Hls);
    assert!(!rtmp.is_empty() && !hls.is_empty());
    let (mr, mh) = (mean(&rtmp), mean(&hls));
    assert!((mr / mh - 1.0).abs() < 0.4, "rtmp={mr} hls={mh}");
    for r in rtmp.iter().chain(&hls) {
        assert!((60_000.0..1_400_000.0).contains(r), "bitrate={r}");
    }
}

/// Finding 5: chat dramatically raises traffic via uncached profile
/// pictures.
#[test]
fn chat_traffic_explosion_end_to_end() {
    let mut lab = Lab::new(LabConfig::small(24));
    let rngs = *lab.rngs();
    let svc = lab.service();
    let t = periscope_repro::simnet::SimTime::from_secs(400);
    let popular = svc
        .population
        .live_at(t)
        .into_iter()
        .max_by_key(|b| b.viewers_at(t))
        .expect("live broadcasts exist")
        .clone();
    let run = |chat_on: bool| {
        let cfg = SessionConfig { chat_on, ..Default::default() };
        periscope_repro::client::rtmp_session::run(&popular, t, &cfg, &rngs.child("chat"))
    };
    let quiet = run(false);
    let chatty = run(true);
    // Compare steady-state rates (media + chat + pictures), like the
    // paper's 500 kbps -> 3.5 Mbps observation; the join bootstrap is the
    // same in both runs.
    let rate = |o: &periscope_repro::client::SessionOutcome| {
        o.capture.rate_of_kinds(&[FlowKind::Rtmp, FlowKind::Chat, FlowKind::PictureHttp])
    };
    assert!(
        rate(&chatty) > rate(&quiet) * 2.0,
        "chat on {} vs off {}",
        rate(&chatty),
        rate(&quiet)
    );
    assert!(chatty.capture.flow_of_kind(FlowKind::PictureHttp).is_some());
    assert!(quiet.capture.flow_of_kind(FlowKind::PictureHttp).is_none());
}

/// The capture → analysis path recovers the encoder's ground truth well
/// enough to reproduce Fig 6 (an integration property spanning encoder,
/// packaging, transport, capture and parser).
#[test]
fn capture_analysis_recovers_stream_properties() {
    let mut lab = Lab::new(LabConfig::small(25));
    let report = lab.run_viewing_sessions(10);
    let mut analyzed = 0;
    for outcome in &report.sessions {
        let Some(r) = analyze_session(outcome) else { continue };
        analyzed += 1;
        assert_eq!(r.width, 320);
        assert_eq!(r.height, 568);
        assert!((10.0..=50.0).contains(&r.avg_qp), "qp={}", r.avg_qp);
        assert!(r.fps > 15.0 && r.fps < 35.0, "fps={}", r.fps);
        assert!(r.i_interval > 20.0 && r.i_interval < 50.0, "i={}", r.i_interval);
        if let Some(a) = r.audio_bitrate_bps {
            assert!((20_000.0..90_000.0).contains(&a), "audio={a}");
        }
    }
    assert!(analyzed >= 8, "analyzed={analyzed}");
}
