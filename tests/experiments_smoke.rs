//! Every registered experiment runs at small scale and renders non-empty
//! output. This is the guarantee behind the `repro` binary: no figure can
//! silently rot.

use periscope_repro::core::{experiments, FigureData, Lab, LabConfig};

#[test]
fn every_experiment_runs_and_renders() {
    // One lab shared across experiments so the memoized session dataset is
    // built once (the slow part).
    let mut lab = Lab::new(LabConfig::small(4242));
    for exp in experiments::all() {
        let figure = (exp.run)(&mut lab);
        let text = figure.render();
        assert!(text.lines().count() >= 3, "experiment {} rendered too little:\n{text}", exp.id);
        // Shape sanity per kind.
        match &figure {
            FigureData::Cdf { series, .. } => {
                assert!(!series.is_empty(), "{}: empty CDF", exp.id);
                for (_, pts) in series {
                    assert!(!pts.is_empty());
                    for w in pts.windows(2) {
                        assert!(w[1].1 >= w[0].1, "{}: CDF not monotone", exp.id);
                    }
                }
            }
            FigureData::Boxplots { groups, .. } => {
                assert!(!groups.is_empty(), "{}: empty boxplots", exp.id);
                for g in groups {
                    assert!(g.q1 <= g.median && g.median <= g.q3, "{}: bad box", exp.id);
                }
            }
            FigureData::Bars { groups, bar_names, .. } => {
                assert!(!groups.is_empty());
                for (_, values) in groups {
                    assert_eq!(values.len(), bar_names.len(), "{}: ragged bars", exp.id);
                }
            }
            FigureData::Scatter { series, .. } => {
                assert!(series.iter().any(|(_, pts)| !pts.is_empty()), "{}: empty scatter", exp.id);
            }
            FigureData::Table { columns, rows } => {
                assert!(!columns.is_empty() && !rows.is_empty(), "{}: empty table", exp.id);
            }
        }
    }
}

#[test]
fn experiment_metadata_is_complete() {
    for exp in experiments::all() {
        assert!(!exp.id.is_empty());
        assert!(!exp.title.is_empty());
        assert!(
            exp.paper_ref.contains("Figure")
                || exp.paper_ref.contains("Table")
                || exp.paper_ref.contains('§'),
            "{}: paper_ref '{}' should cite the paper",
            exp.id,
            exp.paper_ref
        );
    }
}
