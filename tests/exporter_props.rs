//! Property tests for the interchange exporters (DESIGN.md §7): arbitrary
//! span fields, unit labels and metric keys must round-trip through the
//! Chrome trace-event encoder as valid JSON, and through the Prometheus
//! text encoder with every label value properly escaped.

use periscope_repro::obs::{chrome_trace, prometheus_text, MetricsRegistry, Span};
use periscope_repro::obs::{prometheus_alert_state, prometheus_build_info, PhaseSpan, MS_BUCKETS};
use periscope_repro::proto::json::{parse, Value};
use pscp_check::{check, ensure, Gen};

/// Label/name characters chosen to stress the escapers: JSON structure
/// characters, both escape triggers (`"`, `\`), control characters, and
/// multi-byte UTF-8.
const NASTY_CHARS: &[char] = &[
    'a', 'z', 'A', '0', '9', ' ', '_', '-', '.', '/', '"', '\\', '\n', '\t', '\r', '\u{1}', '{',
    '}', '=', ',', '#', '\u{00e9}', '\u{4e2d}',
];

/// Leaks a generated string into a `&'static str` — span subsystem/name and
/// metric keys are `&'static` in the real code because they are literals;
/// the tests leak per-case strings to drive arbitrary bytes through the
/// same paths (a few KiB over a test run).
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn arb_span(g: &mut Gen, id: u32) -> Span {
    // Bounded to f64-exact integers: the checking parser (like JavaScript)
    // reads JSON numbers as doubles. 2^52 µs is ~142 years of sim time.
    let start_us = g.u64(0..1 << 52);
    let end_us = if g.bool() { Span::OPEN } else { start_us + g.u64(0..10_000_000) };
    Span {
        id,
        parent: if id > 0 && g.bool() { Some(g.u64(0..id as u64) as u32) } else { None },
        start_us,
        end_us,
        subsystem: leak(g.string(NASTY_CHARS, 1..=12)),
        name: leak(g.string(NASTY_CHARS, 1..=16)),
    }
}

fn arb_spans(g: &mut Gen) -> Vec<(String, Span)> {
    let n = g.u64(0..12) as u32;
    (0..n).map(|id| (g.string(NASTY_CHARS, 0..=16), arb_span(g, id))).collect()
}

fn arb_phases(g: &mut Gen) -> Vec<PhaseSpan> {
    g.vec(0..4, |g| PhaseSpan {
        name: g.string(NASTY_CHARS, 0..=16),
        wall_secs: g.f64(0.0..1e4),
        workers: g.u64(1..64) as usize,
        items: g.u64(0..100_000) as usize,
        busy_secs: g.f64(0.0..1e5),
    })
}

#[test]
fn chrome_trace_is_valid_json_and_round_trips_span_fields() {
    check(
        "chrome_trace_round_trip",
        |g: &mut Gen| (arb_spans(g), arb_phases(g)),
        |(spans, phases)| {
            let doc = chrome_trace(spans, phases);
            let v = parse(&doc).map_err(|e| format!("exporter emitted invalid JSON: {e:?}"))?;
            let events = v
                .get("traceEvents")
                .and_then(Value::as_array)
                .ok_or("missing traceEvents array")?;
            // Span events on pid 1 must round-trip name/cat/ts/dur exactly,
            // in input order.
            let xs: Vec<&Value> = events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("pid").and_then(Value::as_u64) == Some(1)
                })
                .collect();
            ensure!(xs.len() == spans.len(), "{} spans became {} events", spans.len(), xs.len());
            for (ev, (_, span)) in xs.iter().zip(spans) {
                ensure!(ev.get("name").and_then(Value::as_str) == Some(span.name), "name mangled");
                ensure!(
                    ev.get("cat").and_then(Value::as_str) == Some(span.subsystem),
                    "subsystem mangled"
                );
                ensure!(
                    ev.get("ts").and_then(Value::as_u64) == Some(span.start_us),
                    "ts mangled for {span:?}"
                );
                ensure!(
                    ev.get("dur").and_then(Value::as_u64) == Some(span.duration_us()),
                    "dur mangled for {span:?}"
                );
            }
            // Unit labels must round-trip through the thread_name metadata,
            // in first-appearance order.
            let mut expected_units: Vec<&str> = Vec::new();
            for (unit, _) in spans {
                if !expected_units.contains(&unit.as_str()) {
                    expected_units.push(unit);
                }
            }
            let threads: Vec<&str> = events
                .iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
                .filter_map(|e| e.get("args")?.get("name")?.as_str())
                .collect();
            ensure!(threads == expected_units, "unit labels mangled: {threads:?}");
            Ok(())
        },
    );
}

type PromLine = (String, Vec<(String, String)>, f64);

/// Splits one Prometheus metric line into (metric name, label pairs, value),
/// un-escaping label values — fails if quoting/escaping is malformed.
fn parse_prom_line(line: &str) -> Result<PromLine, String> {
    let (name, rest) = match line.find('{') {
        Some(b) => {
            let name = &line[..b];
            let rest = &line[b + 1..];
            let mut labels = Vec::new();
            let mut chars = rest.chars().peekable();
            loop {
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                if chars.next() != Some('"') {
                    return Err(format!("label value not quoted in {line:?}"));
                }
                let mut value = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => value.push('\\'),
                            Some('"') => value.push('"'),
                            Some('n') => value.push('\n'),
                            other => return Err(format!("bad escape {other:?} in {line:?}")),
                        },
                        Some('"') => break,
                        Some(c) => value.push(c),
                        None => return Err(format!("unterminated label value in {line:?}")),
                    }
                }
                labels.push((key, value));
                match chars.next() {
                    Some(',') => continue,
                    Some('}') => break,
                    other => return Err(format!("bad label separator {other:?} in {line:?}")),
                }
            }
            let tail: String = chars.collect();
            (name.to_string(), (labels, tail))
        }
        None => {
            let (name, tail) = line.split_once(' ').ok_or(format!("no value in {line:?}"))?;
            (name.to_string(), (Vec::new(), format!(" {tail}")))
        }
    };
    let (labels, tail) = rest;
    let value: f64 = tail.trim().parse().map_err(|_| format!("bad value in {line:?}"))?;
    Ok((name, labels, value))
}

#[test]
fn prometheus_text_escapes_arbitrary_label_values() {
    check(
        "prometheus_label_escaping",
        |g: &mut Gen| {
            let mut m = MetricsRegistry::new();
            for _ in 0..g.u64(1..8) {
                m.count(
                    leak(g.string(NASTY_CHARS, 1..=10)),
                    leak(g.string(NASTY_CHARS, 1..=10)),
                    g.u64(0..1_000_000),
                );
            }
            for _ in 0..g.u64(0..4) {
                m.observe(
                    leak(g.string(NASTY_CHARS, 1..=10)),
                    leak(g.string(NASTY_CHARS, 1..=10)),
                    &MS_BUCKETS,
                    g.u64(0..100_000),
                );
            }
            m
        },
        |m| {
            let text = prometheus_text(m);
            // Every metric line must parse — label values recoverable by
            // un-escaping — and the counter lines must round-trip the
            // registry's exact (subsystem, name) keys in order.
            let mut counter_keys: Vec<(String, String)> = Vec::new();
            for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
                let (metric, labels, _value) = parse_prom_line(line)?;
                ensure!(metric.starts_with("pscp_"), "unexpected metric {metric:?}");
                if metric == "pscp_counter" {
                    ensure!(labels.len() == 2, "counter labels: {labels:?}");
                    ensure!(labels[0].0 == "subsystem" && labels[1].0 == "name", "{labels:?}");
                    counter_keys.push((labels[0].1.clone(), labels[1].1.clone()));
                }
            }
            let expected: Vec<(String, String)> =
                m.counters().map(|(s, n, _)| (s.to_string(), n.to_string())).collect();
            ensure!(counter_keys == expected, "label values mangled: {counter_keys:?}");
            Ok(())
        },
    );
}

#[test]
fn alert_state_gauge_escapes_arbitrary_rule_and_shard_labels() {
    check(
        "alert_state_escaping",
        |g: &mut Gen| {
            g.vec(0..8, |g| (g.string(NASTY_CHARS, 1..=16), g.string(NASTY_CHARS, 1..=8), g.bool()))
        },
        |states| {
            let text = prometheus_alert_state(states);
            ensure!(text.starts_with("# HELP pscp_alert_state "), "missing HELP");
            ensure!(text.contains("# TYPE pscp_alert_state gauge\n"), "missing TYPE");
            let mut seen: Vec<(String, String, bool)> = Vec::new();
            for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
                let (metric, labels, value) = parse_prom_line(line)?;
                ensure!(metric == "pscp_alert_state", "unexpected metric {metric:?}");
                ensure!(labels.len() == 2, "alert labels: {labels:?}");
                ensure!(labels[0].0 == "rule" && labels[1].0 == "shard", "{labels:?}");
                ensure!(value == 0.0 || value == 1.0, "gauge value {value} not 0/1");
                seen.push((labels[0].1.clone(), labels[1].1.clone(), value == 1.0));
            }
            // Rule and shard labels must round-trip exactly, in input order.
            ensure!(&seen == states, "alert-state labels mangled: {seen:?}");
            Ok(())
        },
    );
}

#[test]
fn build_info_gauge_escapes_arbitrary_tier_labels() {
    check(
        "build_info_escaping",
        |g: &mut Gen| {
            (g.u64(0..u64::MAX), g.string(NASTY_CHARS, 0..=16), g.u64(0..64), g.u64(0..128))
        },
        |(seed, tier, shards, threads)| {
            let text = prometheus_build_info(*seed, tier, *shards as u32, *threads as usize);
            ensure!(text.starts_with("# HELP pscp_build_info "), "missing HELP");
            ensure!(text.contains("# TYPE pscp_build_info gauge\n"), "missing TYPE");
            let line = text
                .lines()
                .find(|l| !l.is_empty() && !l.starts_with('#'))
                .ok_or("no metric line")?;
            let (metric, labels, value) = parse_prom_line(line)?;
            ensure!(metric == "pscp_build_info", "unexpected metric {metric:?}");
            ensure!(value == 1.0, "build info gauge must be constant 1, got {value}");
            let keys: Vec<&str> = labels.iter().map(|(k, _)| k.as_str()).collect();
            ensure!(keys == ["seed", "tier", "shards", "threads"], "label keys: {keys:?}");
            ensure!(labels[0].1 == seed.to_string(), "seed mangled");
            ensure!(&labels[1].1 == tier, "tier label mangled: {:?}", labels[1].1);
            ensure!(labels[2].1 == shards.to_string(), "shards mangled");
            ensure!(labels[3].1 == threads.to_string(), "threads mangled");
            Ok(())
        },
    );
}
