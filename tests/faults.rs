//! Fault-injection invariants (DESIGN.md §8): the disabled layer must be
//! provably inert, the enabled layer bit-reproducible and thread-invariant,
//! recovery paths (retry, failover, re-poll) must actually engage, and the
//! chaos sweep's stall ratio must be monotone in the injected loss rate.

use periscope_repro::client::session::{SessionConfig, SessionOutcome};
use periscope_repro::client::{Teleport, TeleportConfig};
use periscope_repro::core::chaos::{run_chaos, ChaosConfig};
use periscope_repro::core::{Lab, LabConfig};
use periscope_repro::obs::{MetricsRegistry, Observer};
use periscope_repro::service::select::Protocol;
use periscope_repro::simnet::fault::{FaultConfig, OutageConfig};
use periscope_repro::simnet::SimTime;

/// Runs a Teleport dataset with the given faults under a tracing observer.
fn run_with_faults(
    lab_seed: u64,
    faults: FaultConfig,
    sessions: usize,
    threads: usize,
) -> (Vec<SessionOutcome>, MetricsRegistry) {
    let mut lab = Lab::new(LabConfig::small(lab_seed));
    let rngs = *lab.rngs();
    let svc = lab.service();
    let obs = Observer::with_flags(true, false);
    let tp = Teleport::new(svc, rngs.child("faults-test"));
    let tcfg = TeleportConfig {
        sessions,
        session: SessionConfig { faults, ..Default::default() },
        alternate_devices: true,
        keep_captures_per_protocol: usize::MAX,
        threads,
        shards: 1,
    };
    let outcomes = tp.run_dataset_observed(&tcfg, &obs);
    (outcomes, obs.metrics())
}

/// Per-session fingerprint (mirrors `tests/determinism.rs` so a single
/// diverging draw shows up).
fn fingerprints(outcomes: &[SessionOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|s| {
            format!(
                "{:?} {:?} {:?} {} {} {} {:?} {:?} {}",
                s.broadcast_id,
                s.protocol,
                s.device,
                s.viewers_at_join,
                s.meta.n_stalls,
                s.capture.total_bytes(),
                s.join_time_s().map(|j| (j * 1e6) as u64),
                s.meta.playback_latency_s.map(|l| (l * 1e6) as u64),
                s.server,
            )
        })
        .collect()
}

#[test]
fn default_fault_config_is_all_off() {
    let f = FaultConfig::default();
    assert!(!f.is_active(), "default FaultConfig must be inert: {f:?}");
    assert!(FaultConfig::chaos(1, 1.0).is_active());
}

/// Satellite check: with every rate at zero the fault layer draws nothing,
/// so even the fault *seed* must not leak into the outputs — sessions,
/// captures and the metrics snapshot are byte-identical across seeds, and
/// no `fault`/`recovery` subsystem may exist.
#[test]
fn disabled_faults_are_byte_inert() {
    let reseeded = FaultConfig { seed: 0xDEAD_BEEF, ..FaultConfig::default() };
    let (out_a, metrics_a) = run_with_faults(31, FaultConfig::default(), 16, 1);
    let (out_b, metrics_b) = run_with_faults(31, reseeded, 16, 1);
    assert_eq!(fingerprints(&out_a), fingerprints(&out_b), "fault seed leaked into a disabled run");
    assert_eq!(metrics_a.snapshot_text(), metrics_b.snapshot_text());
    let subs = metrics_a.subsystems();
    assert!(!subs.contains(&"fault"), "disabled run recorded fault counters: {subs:?}");
    assert!(!subs.contains(&"recovery"), "disabled run recorded recovery counters: {subs:?}");
}

#[test]
fn disabled_faults_are_thread_invariant() {
    let (out_1, metrics_1) = run_with_faults(32, FaultConfig::default(), 16, 1);
    let (out_8, metrics_8) = run_with_faults(32, FaultConfig::default(), 16, 8);
    assert_eq!(fingerprints(&out_1), fingerprints(&out_8));
    assert_eq!(metrics_1.snapshot_text(), metrics_8.snapshot_text());
}

/// Acceptance: a fixed fault seed reproduces the identical fault schedule,
/// retry counts and QoE dataset at 1, 2 and 8 threads.
#[test]
fn enabled_faults_reproduce_across_thread_counts() {
    let faults = FaultConfig::chaos(77, 1.0);
    let (out_1, metrics_1) = run_with_faults(33, faults, 16, 1);
    let (out_2, metrics_2) = run_with_faults(33, faults, 16, 2);
    let (out_8, metrics_8) = run_with_faults(33, faults, 16, 8);
    assert_eq!(fingerprints(&out_1), fingerprints(&out_2), "faults diverged at 2 threads");
    assert_eq!(fingerprints(&out_1), fingerprints(&out_8), "faults diverged at 8 threads");
    assert_eq!(metrics_1.snapshot_text(), metrics_2.snapshot_text());
    assert_eq!(metrics_1.snapshot_text(), metrics_8.snapshot_text());
    assert!(
        metrics_1.subsystems().contains(&"fault"),
        "chaos preset produced no fault counters:\n{}",
        metrics_1.snapshot_text()
    );
}

/// Recovery integration: CDN-POP outages force playlist re-polls and stall
/// the HLS player, and the session machinery survives without panicking.
#[test]
fn pop_outage_forces_repolls_and_stalls() {
    let faults = FaultConfig {
        seed: 5,
        pop_outage: OutageConfig { p_minute: 0.5 },
        ..FaultConfig::default()
    };
    let (outcomes, metrics) = run_with_faults(34, faults, 24, 0);
    assert!(metrics.counter("fault", "pop_outage_polls") >= 1, "no poll ever hit an outage");
    assert!(metrics.counter("recovery", "playlist_repolls") >= 1);
    let hls_stalls: u32 =
        outcomes.iter().filter(|o| o.protocol == Protocol::Hls).map(|o| o.meta.n_stalls).sum();
    assert!(hls_stalls >= 1, "outage-delayed segments never stalled the HLS player");
}

/// Recovery integration: a persistent ingest-server outage (every minute
/// down) makes every RTMP-selected session fail over to HLS.
#[test]
fn persistent_ingest_outage_fails_over_to_hls() {
    let faults = FaultConfig {
        seed: 6,
        ingest_outage: OutageConfig { p_minute: 1.0 },
        ..FaultConfig::default()
    };
    let (outcomes, metrics) = run_with_faults(35, faults, 16, 0);
    let failovers = metrics.counter("recovery", "failovers");
    assert!(failovers >= 1, "no session failed over despite a total ingest outage");
    assert_eq!(
        metrics.counter("fault", "ingest_outages"),
        failovers,
        "every detected outage should fail over under a persistent outage"
    );
    // After failover the whole dataset is HLS, and sessions still play.
    assert!(outcomes.iter().all(|o| o.protocol == Protocol::Hls));
    assert!(outcomes.iter().any(|o| o.player.join_time.is_some()));
}

/// Injected API errors either retry to success (delayed join) or exhaust
/// the budget into a never-joined session — the counters must balance
/// exactly: every injected error is followed by a retry or an abandonment.
#[test]
fn api_error_retries_are_accounted() {
    let faults =
        FaultConfig { seed: 7, api_429_rate: 0.25, api_5xx_rate: 0.15, ..FaultConfig::default() };
    let (outcomes, metrics) = run_with_faults(36, faults, 24, 1);
    let injected = metrics.counter("fault", "api_429") + metrics.counter("fault", "api_5xx");
    let handled =
        metrics.counter("recovery", "api_retries") + metrics.counter("recovery", "api_exhausted");
    assert!(injected >= 1, "rates this high must inject errors:\n{}", metrics.snapshot_text());
    assert_eq!(injected, handled, "every injected error retries or abandons");
    // Exhausted sessions appear as never-joined rows, not as missing rows.
    if metrics.counter("recovery", "api_exhausted") > 0 {
        assert!(outcomes.iter().any(|o| o.server == "unreachable"));
    }
}

/// Outage schedules are pure functions of (seed, unit, time): any observer
/// agrees, and different units get different schedules.
#[test]
fn outage_schedule_is_globally_consistent() {
    let outage = OutageConfig { p_minute: 0.3 };
    let mut down = 0;
    let mut diverged = false;
    for minute in 0..240u64 {
        let t = SimTime::from_secs(minute * 60 + 30);
        let a = outage.in_outage(9, "vidman-eu-1", t);
        assert_eq!(a, outage.in_outage(9, "vidman-eu-1", t));
        if a {
            down += 1;
        }
        if a != outage.in_outage(9, "pop-ams", t) {
            diverged = true;
        }
    }
    assert!(down > 0, "p=0.3 over 240 minutes must produce outages");
    assert!(down < 240, "p=0.3 must not take the unit down permanently");
    assert!(diverged, "different units must get different schedules");
}

// --------------------------------------------------------- datagram links
//
// The SRT ingest path rides the unreliable datagram transport, whose fault
// layer reuses the reliable path's Gilbert–Elliott chain. These two tests
// pin the integration-level contract the chaos sweep depends on: the loss
// schedule is a pure function of (config, seed), and a disabled config
// attaches no fault state at all — the datagram link is then byte-identical
// to a bare `Link`.

#[test]
fn datagram_ge_loss_is_bit_reproducible() {
    use periscope_repro::simnet::{DatagramLink, SimDuration};
    let fates = |seed: u64| {
        let mut dg = DatagramLink::unbounded(8e6, SimDuration::from_millis(10)).with_faults(
            &FaultConfig::chaos(5, 1.0),
            seed,
            "srt/link",
        );
        (0..2000u64).map(|i| dg.send(SimTime::from_millis(i), 500)).collect::<Vec<_>>()
    };
    assert_eq!(fates(7), fates(7), "datagram loss schedule must be deterministic");
    assert_ne!(fates(7), fates(8), "the unit seed must key the schedule");
    assert!(
        fates(7).iter().any(|f| f.time().is_none()),
        "chaos preset at 1x must lose at least one of 2000 datagrams"
    );
}

#[test]
fn datagram_faults_are_inert_when_disabled() {
    use periscope_repro::simnet::{DatagramLink, Link, SimDuration};
    let mut dg = DatagramLink::unbounded(8e6, SimDuration::from_millis(10)).with_faults(
        &FaultConfig::default(),
        0xDEAD_BEEF,
        "srt/link",
    );
    let mut bare = Link::unbounded(8e6, SimDuration::from_millis(10));
    assert!(dg.fault_counts().is_none(), "disabled config must attach no fault state");
    for i in 0..500u64 {
        let now = SimTime::from_millis(i * 2);
        assert_eq!(
            dg.send(now, 700).time(),
            bare.enqueue(now, 700).time(),
            "faultless datagram link must be byte-identical to a bare link"
        );
    }
    assert_eq!(dg.lost_wire, 0);
}

// ------------------------------------------------------- three-way chaos
//
// The chaos sweep is a paired comparison: every (transport × intensity)
// point replans the identical sessions (same RNG namespace), so arm
// differences measure the transport discipline, not sampling luck.

/// Runs one forced-transport Teleport arm under the chaos preset. Every
/// call reuses the same lab seed and RNG child, so arms are paired session
/// by session (common random numbers).
fn run_transport_arm(
    lab_seed: u64,
    faults: FaultConfig,
    transport: Protocol,
    sessions: usize,
) -> Vec<SessionOutcome> {
    let mut lab = Lab::new(LabConfig::small(lab_seed));
    let rngs = *lab.rngs();
    let svc = lab.service();
    let obs = Observer::with_flags(true, false);
    let tp = Teleport::new(svc, rngs.child("faults-test"));
    let tcfg = TeleportConfig {
        sessions,
        session: SessionConfig { faults, transport: Some(transport), ..Default::default() },
        alternate_devices: true,
        keep_captures_per_protocol: 0,
        threads: 0,
        shards: 1,
    };
    tp.run_dataset_observed(&tcfg, &obs)
}

/// Acceptance (tentpole): at ≥2× chaos loss (marginal Gilbert–Elliott loss
/// ≈ 4.8%, disconnect windows active) the SRT arm's total stall time is
/// strictly below the RTMP arm's over the same planned sessions. The win is
/// the loss-recovery discipline: SRT conceals too-late packets inside its
/// latency window and shrugs off the connection-oriented disconnect windows
/// that force RTMP sessions to stall and reconnect.
#[test]
fn srt_arm_beats_rtmp_arm_at_double_loss() {
    let faults = FaultConfig::chaos(2016, 2.0);
    let rtmp = run_transport_arm(38, faults, Protocol::Rtmp, 16);
    let srt = run_transport_arm(38, faults, Protocol::Srt, 16);
    assert_eq!(rtmp.len(), srt.len(), "paired arms must plan the same sessions");
    let total = |arm: &[SessionOutcome]| arm.iter().map(|o| o.stall_ratio()).sum::<f64>();
    let (rtmp_total, srt_total) = (total(&rtmp), total(&srt));
    assert!(
        srt_total < rtmp_total,
        "SRT stall sum {srt_total:.4} should strictly beat RTMP {rtmp_total:.4} at 2x loss"
    );
}

/// Acceptance: in the three-way sweep the RTMP arm's QoE degrades
/// monotonically with the injected loss scale — as join-time growth, since
/// the TCP flow floor turns Gilbert–Elliott loss into a bounded one-time
/// latency shift rather than mid-stream stalls — the per-arm loss counters
/// obey the Gilbert–Elliott superset property, and the artifact carries
/// every (transport × scale) point plus one SLO verdict per arm.
#[test]
fn chaos_sweep_stall_ratio_is_monotone_in_loss() {
    let mut lab = Lab::new(LabConfig::small(37));
    let cfg = ChaosConfig {
        seed: 2016,
        sessions: 16,
        loss_scales: vec![0.0, 1.0, 4.0],
        transports: vec![Some(Protocol::Rtmp), Some(Protocol::Hls), Some(Protocol::Srt)],
        threads: 0,
    };
    let sweep = run_chaos(&mut lab, &cfg);
    assert_eq!(sweep.points.len(), 9, "3 transports x 3 scales");
    let rtmp = sweep.arm(Some(Protocol::Rtmp));
    let joins: Vec<f64> = rtmp.iter().map(|p| p.mean_join_s()).collect();
    for w in joins.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "RTMP join time not monotone in loss scale: {joins:?}");
    }
    assert!(joins[2] > joins[0], "4x loss should visibly delay RTMP joins: {joins:?}");
    // Loss counters only exist once loss is on, and grow with the scale
    // (the Gilbert–Elliott superset property) on every arm that draws them.
    for transport in [Protocol::Rtmp, Protocol::Hls, Protocol::Srt] {
        let arm = sweep.arm(Some(transport));
        let lost = |i: usize| arm[i].counter("fault", "lost_packets");
        assert_eq!(lost(0), 0, "{transport:?}: scale 0 must lose nothing");
        assert!(
            lost(2) >= lost(1),
            "{transport:?}: superset property violated: {} < {}",
            lost(2),
            lost(1)
        );
    }
    assert!(rtmp.last().expect("rtmp arm").counter("fault", "lost_packets") > 0);
    // The SRT arm actually exercises the ARQ loop once loss is on: NAKs go
    // out, retransmits come back, and too-late packets are concealed (not
    // stalled on) — all strictly increasing in the loss scale.
    let srt = sweep.arm(Some(Protocol::Srt));
    assert!(srt[2].counter("srt", "nak_sent") > srt[0].counter("srt", "nak_sent"));
    assert!(srt[2].counter("srt", "retransmits") > srt[0].counter("srt", "retransmits"));
    // One SLO verdict per arm, at the nominal x1 intensity.
    assert_eq!(sweep.slo.len(), 3);
    assert!(sweep.slo.iter().all(|s| s.loss_scale == 1.0));
    // The artifact parses as JSON and names every sweep point.
    let json = sweep.sweep_json();
    let parsed = periscope_repro::proto::json::parse(&json).expect("CHAOS_sweep.json parses");
    assert_eq!(parsed.get("points").and_then(|p| p.as_array()).map(|a| a.len()), Some(9));
    assert_eq!(parsed.get("slo").and_then(|p| p.as_array()).map(|a| a.len()), Some(3));
}

/// Acceptance: the full three-way artifact is byte-identical at 1, 2 and 8
/// worker threads — the sweep's parallelism must not touch a single draw.
#[test]
fn chaos_sweep_is_thread_invariant_three_way() {
    let sweep_at = |threads: usize| {
        let mut lab = Lab::new(LabConfig::small(37));
        let cfg = ChaosConfig {
            seed: 2016,
            sessions: 8,
            loss_scales: vec![0.0, 2.0],
            transports: vec![Some(Protocol::Rtmp), Some(Protocol::Hls), Some(Protocol::Srt)],
            threads,
        };
        run_chaos(&mut lab, &cfg).sweep_json()
    };
    let one = sweep_at(1);
    assert_eq!(one, sweep_at(2), "chaos sweep diverged at 2 threads");
    assert_eq!(one, sweep_at(8), "chaos sweep diverged at 8 threads");
}
