//! Golden snapshots of the headline seed-2016 statistics.
//!
//! These pin the *numbers* (not just the shapes checked by
//! `paper_findings.rs`) so any change to the RNG, the workload model or the
//! session pipeline shows up as an explicit test diff rather than a silent
//! drift of the EXPERIMENTS.md baseline. Every constant is the exact value
//! produced by `LabConfig::small(2016)`; a deliberate re-baseline updates
//! these together with EXPERIMENTS.md (DESIGN.md §9 documents the one such
//! re-baseline, when the external `rand` crate was replaced by the in-tree
//! counter RNG).
//!
//! Floats are compared with `==`: the pipeline is deterministic, so the
//! correct value is bit-exact, and any inexactness is exactly the drift
//! this suite exists to catch.

use periscope_repro::core::chaos::{run_chaos, ChaosConfig};
use periscope_repro::core::{experiments, FigureData, Lab, LabConfig};
use periscope_repro::qoe::dataset::SessionDataset;
use periscope_repro::service::select::Protocol;
use periscope_repro::stats::quantile::quantiles;

const SEED: u64 = 2016;

/// Fig 1(a): cumulative broadcasts discovered by the deep crawl, per
/// crawl hour — first query's yield, final cumulative count, query count.
#[test]
fn fig1a_discovery_counts() {
    let mut lab = Lab::new(LabConfig::small(SEED));
    let fig = (experiments::by_id("fig1a").unwrap().run)(&mut lab);
    let FigureData::Scatter { series, .. } = &fig else { panic!("scatter expected") };
    let golden: &[(&str, usize, f64, f64)] = &[
        ("crawl@02h", 21, 30.0, 101.0),
        ("crawl@08h", 33, 30.0, 137.0),
        ("crawl@14h", 33, 30.0, 149.0),
        ("crawl@20h", 41, 30.0, 166.0),
    ];
    assert_eq!(series.len(), golden.len(), "crawl-hour series count changed");
    for ((label, pts), (g_label, g_n, g_first, g_last)) in series.iter().zip(golden) {
        assert_eq!(label, g_label);
        assert_eq!(pts.len(), *g_n, "{label}: query count changed");
        assert_eq!(pts.first().unwrap().1, *g_first, "{label}: first query's yield changed");
        assert_eq!(pts.last().unwrap().1, *g_last, "{label}: cumulative discovery count changed");
    }
}

/// §5 QoE quantiles: join time over the unlimited-bandwidth RTMP sessions,
/// stall ratio over the bandwidth-sweep groups (unlimited RTMP never
/// stalls at small scale — itself a pinned fact).
#[test]
fn qoe_quantiles() {
    let mut lab = Lab::new(LabConfig::small(SEED));
    let dataset = lab.session_dataset();
    let rtmp = dataset.unlimited(Protocol::Rtmp);
    assert_eq!(rtmp.len(), 21, "unlimited RTMP session count changed");

    let stall = SessionDataset::stall_ratios(&rtmp);
    let join = SessionDataset::join_times_s(&rtmp);
    let ps = [0.25, 0.5, 0.9];
    assert_eq!(quantiles(&stall, &ps).unwrap(), vec![0.0, 0.0, 0.0]);
    assert_eq!(quantiles(&join, &ps).unwrap(), vec![0.524036, 1.757723, 1.787923]);

    // The bandwidth sweep: only the 0.5 Mbps cap (below the ~2 Mbps QoE
    // boundary of §5.1) produces a nonzero median stall ratio.
    let golden: &[(f64, usize, f64)] =
        &[(0.5, 6, 0.05290723990451679), (2.0, 6, 0.0), (6.0, 6, 0.0)];
    for (limit, g_n, g_q50) in golden {
        let group = dataset.at_limit(*limit);
        assert_eq!(group.len(), *g_n, "session count at {limit} Mbps changed");
        let s = SessionDataset::stall_ratios(&group);
        assert_eq!(quantiles(&s, &[0.5]).unwrap()[0], *g_q50, "stall q50 at {limit} Mbps changed");
    }
}

/// Chaos sweep: exact mean stall ratio per loss scale, and the
/// monotonicity the fault layer guarantees.
#[test]
fn chaos_sweep_points() {
    let mut lab = Lab::new(LabConfig::small(SEED));
    // One selection-policy arm: the pre-transport-study sweep shape, so
    // the golden means below are untouched by the three-way study.
    let cfg = ChaosConfig {
        seed: SEED,
        sessions: 16,
        loss_scales: vec![0.0, 1.0, 4.0],
        transports: vec![None],
        threads: 0,
    };
    let sweep = run_chaos(&mut lab, &cfg);
    let means: Vec<f64> = sweep.points.iter().map(|p| p.mean_stall_ratio()).collect();
    assert_eq!(means, vec![0.0031572212207557323, 0.0031572212207557323, 0.003214353393543745]);
    for w in means.windows(2) {
        assert!(w[1] >= w[0], "stall ratio must be monotone in loss scale: {means:?}");
    }
}
