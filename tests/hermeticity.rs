//! Hermeticity guard: the workspace must build with zero network access,
//! which means no external crates anywhere in the dependency graph. This
//! walks every `Cargo.toml` in the repo and fails if any dependency section
//! names a crate that is not an in-tree `pscp-*` workspace member. A
//! teammate adding `rand = "0.8"` back gets a test failure with the file
//! and line, not a registry timeout three PRs later.

use std::path::{Path, PathBuf};

/// All Cargo.toml files: the workspace root plus every crate.
fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).expect("read crates/");
    for entry in entries {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() > 10, "expected the workspace root plus every crate, got {}", out.len());
    out
}

/// Dependency keys allowed everywhere: in-tree workspace members only.
fn is_internal(name: &str) -> bool {
    name.starts_with("pscp-")
}

/// Extracts `(line_number, dependency_name)` pairs from every dependency
/// section of a manifest. Hand-rolled because the repo has no TOML crate —
/// the format in-tree is plain `name = { ... }` / `name.workspace = true`
/// lines under `[...dependencies...]` headers.
fn dependency_names(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            // [dependencies], [dev-dependencies], [build-dependencies],
            // [workspace.dependencies], [target.'...'.dependencies]
            in_dep_section = line.trim_end_matches(']').ends_with("dependencies");
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(key) = line.split('=').next() {
            let name = key.trim().split('.').next().unwrap_or("").trim();
            if !name.is_empty() {
                out.push((i + 1, name.to_string()));
            }
        }
    }
    out
}

#[test]
fn no_external_dependencies_anywhere() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        for (line, name) in dependency_names(&text) {
            if !is_internal(&name) {
                violations
                    .push(format!("{}:{line}: external dependency `{name}`", manifest.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "external dependencies break the offline build:\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn workspace_dependency_table_is_path_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = std::fs::read_to_string(root).expect("read workspace manifest");
    let mut in_table = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && !line.is_empty() && !line.starts_with('#') {
            assert!(
                line.contains("path ="),
                "[workspace.dependencies] entry without a path (registry dep?): {line}"
            );
        }
    }
}

#[test]
fn every_crate_is_a_pscp_crate() {
    // The `cargo tree` acceptance criterion, testable without cargo: every
    // package name in the workspace is either the root or `pscp-*`.
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest).expect("read manifest");
        let name = text
            .lines()
            .skip_while(|l| l.trim() != "[package]")
            .find_map(|l| l.trim().strip_prefix("name = "))
            .map(|v| v.trim_matches('"').to_string());
        if let Some(name) = name {
            assert!(
                name == "periscope-repro" || name.starts_with("pscp-"),
                "unexpected package `{name}` in {}",
                manifest.display()
            );
        }
    }
}
