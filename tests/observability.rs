//! Observability-layer invariants (DESIGN.md §7): tracing must be a pure
//! read-only tap — figures and datasets byte-identical with it on or off,
//! the merged event log byte-identical at any thread count, and the metric
//! snapshot stable and complete.

use periscope_repro::core::{experiments, Lab, LabConfig};
use periscope_repro::obs::{MetricsRegistry, MS_BUCKETS};

/// Per-session fingerprint of the full QoE dataset (mirrors
/// `tests/determinism.rs` so a single diverging draw shows up).
fn dataset_fingerprint(trace: bool, threads: usize, seed: u64) -> Vec<String> {
    let mut config = LabConfig::small(seed);
    config.trace = trace;
    config.threads = threads;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    dataset
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{:?} {:?} {:?} {} {} {} {:?} {:?}",
                s.broadcast_id,
                s.protocol,
                s.device,
                s.viewers_at_join,
                s.meta.n_stalls,
                s.capture.total_bytes(),
                s.join_time_s().map(|j| (j * 1e6) as u64),
                s.meta.playback_latency_s.map(|l| (l * 1e6) as u64),
            )
        })
        .collect()
}

#[test]
fn tracing_does_not_change_the_dataset() {
    let off = dataset_fingerprint(false, 1, 21);
    let on = dataset_fingerprint(true, 1, 21);
    assert_eq!(off, on, "tracing changed simulation results");
}

#[test]
fn tracing_does_not_change_the_dataset_parallel() {
    let off = dataset_fingerprint(false, 8, 22);
    let on = dataset_fingerprint(true, 8, 22);
    assert_eq!(off, on, "tracing changed parallel simulation results");
}

#[test]
fn figures_identical_with_tracing_on_and_off() {
    let render = |trace: bool, id: &str| {
        let mut config = LabConfig::small(23);
        config.trace = trace;
        let mut lab = Lab::new(config);
        let exp = experiments::by_id(id).expect("experiment exists");
        (exp.run)(&mut lab).render()
    };
    for id in ["fig1a", "fig3b", "fig7"] {
        assert_eq!(render(false, id), render(true, id), "experiment {id}");
    }
}

/// The merged event log must be byte-identical at every thread count:
/// per-unit traces are absorbed in plan order, never completion order.
fn event_log(threads: usize, seed: u64) -> (String, String) {
    let mut config = LabConfig::small(seed);
    config.trace = true;
    config.threads = threads;
    let mut lab = Lab::new(config);
    lab.session_dataset();
    lab.deep_crawl_at(14.0);
    let obs = lab.observer();
    (obs.events_jsonl(), obs.metrics().snapshot_text())
}

#[test]
fn event_log_invariant_under_thread_count() {
    let (log1, metrics1) = event_log(1, 24);
    let (log8, metrics8) = event_log(8, 24);
    assert!(!log1.is_empty(), "tracing produced no events");
    assert_eq!(log1, log8, "event log diverged across thread counts");
    assert_eq!(metrics1, metrics8, "metrics diverged across thread counts");
}

#[test]
fn event_log_lines_are_valid_json() {
    let (log, _) = event_log(1, 25);
    let mut lines = 0;
    for line in log.lines() {
        let v = periscope_repro::proto::json::parse(line)
            .unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e:?}"));
        assert!(v.get("t_us").is_some(), "missing t_us: {line}");
        assert!(v.get("unit").is_some(), "missing unit: {line}");
        assert!(v.get("sub").is_some(), "missing sub: {line}");
        assert!(v.get("ev").is_some(), "missing ev: {line}");
        lines += 1;
    }
    assert!(lines > 100, "expected a substantial log, got {lines} lines");
}

#[test]
fn metrics_cover_the_required_subsystems() {
    let mut config = LabConfig::small(26);
    config.trace = true;
    let mut lab = Lab::new(config);
    lab.session_dataset();
    lab.deep_crawl_at(14.0);
    let metrics = lab.observer().metrics();
    let subs = metrics.subsystems();
    for required in ["session", "player", "tcp", "service", "crawler", "hls", "rtmp"] {
        assert!(subs.contains(&required), "subsystem {required} missing from {subs:?}");
    }
    assert!(subs.len() >= 5, "need >= 5 subsystems, got {subs:?}");
}

#[test]
fn metrics_snapshot_ordering_is_stable() {
    // Insertion order must not leak into the snapshot: the registry is
    // keyed on BTreeMaps, so two differently-ordered merges render the same.
    let mut a = MetricsRegistry::new();
    a.count("zeta", "last", 1);
    a.count("alpha", "first", 2);
    a.observe("mid", "lat_ms", &MS_BUCKETS, 42);
    let mut b = MetricsRegistry::new();
    b.observe("mid", "lat_ms", &MS_BUCKETS, 42);
    b.count("alpha", "first", 2);
    b.count("zeta", "last", 1);
    assert_eq!(a.snapshot_text(), b.snapshot_text());
    assert_eq!(a.snapshot_json(), b.snapshot_json());
    let text = a.snapshot_text();
    let alpha = text.find("alpha").expect("alpha present");
    let zeta = text.find("zeta").expect("zeta present");
    assert!(alpha < zeta, "subsystems not sorted:\n{text}");
}

#[test]
fn histogram_bucket_edges_are_fixed() {
    // The bucket layout is part of the output contract; changing it silently
    // would break downstream dashboards diffing TRACE_metrics.json.
    assert_eq!(
        MS_BUCKETS.edges,
        &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 60_000]
    );
}

#[test]
fn counter_totals_match_expected_for_seed_2() {
    // LabConfig::small(2): 30 unlimited sessions + 3 limits x 6 sessions.
    // These totals are structural (they count work items, not stochastic
    // outcomes), so they are exact for any seed with this config.
    let mut config = LabConfig::small(2);
    config.trace = true;
    let mut lab = Lab::new(config);
    lab.session_dataset();
    let metrics = lab.observer().metrics();
    assert_eq!(metrics.counter("session", "started"), 48);
    assert_eq!(metrics.counter("shaper", "limited_sessions"), 18);
    assert_eq!(metrics.counter("service", "access_video"), 48);
    let rtmp = metrics.counter("session", "rtmp");
    let hls = metrics.counter("session", "hls");
    assert_eq!(rtmp + hls, 48, "every session is rtmp or hls");
    // Every session joins or is recorded as never joining.
    let joined = metrics.counter("player", "joined");
    let never = metrics.counter("player", "never_joined");
    assert_eq!(joined + never, 48);
}

#[test]
fn disabled_observer_stays_empty() {
    let mut lab = Lab::new(LabConfig::small(27));
    lab.session_dataset();
    let obs = lab.observer();
    assert!(!obs.tracing());
    assert_eq!(obs.event_count(), 0);
    assert!(obs.metrics().is_empty());
    assert!(obs.phases().is_empty());
}

/// One span-enabled run: dataset fingerprint, a rendered figure, the SLO
/// report JSON and the Chrome trace export — everything the span layer
/// promises to keep byte-identical across thread counts.
fn span_run(threads: usize, seed: u64) -> (Vec<String>, String, String, String) {
    let mut config = LabConfig::small(seed);
    config.trace = true;
    config.threads = threads;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    let fingerprint: Vec<String> = dataset
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{:?} {:?} {} {:?}",
                s.broadcast_id,
                s.protocol,
                s.capture.total_bytes(),
                s.join_time_s().map(|j| (j * 1e6) as u64),
            )
        })
        .collect();
    let figure = {
        let exp = experiments::by_id("fig3b").expect("experiment exists");
        (exp.run)(&mut lab).render()
    };
    let spans = lab.observer().spans();
    let slo = periscope_repro::qoe::slo::evaluate(
        &periscope_repro::qoe::SloSpec::paper(),
        &dataset,
        &spans,
        "threads-test",
    )
    .to_json();
    // Wall-clock phases are the one legitimately non-deterministic channel,
    // so the deterministic export contract is spans-only.
    let chrome = periscope_repro::obs::chrome_trace(&spans, &[]);
    (fingerprint, figure, slo, chrome)
}

#[test]
fn span_artifacts_identical_across_thread_counts() {
    let one = span_run(1, 2016);
    let two = span_run(2, 2016);
    let eight = span_run(8, 2016);
    assert_eq!(one.0, two.0, "dataset fingerprint diverged at 2 threads");
    assert_eq!(one.0, eight.0, "dataset fingerprint diverged at 8 threads");
    assert_eq!(one.1, two.1, "figure diverged at 2 threads");
    assert_eq!(one.1, eight.1, "figure diverged at 8 threads");
    assert_eq!(one.2, two.2, "SLO_report.json diverged at 2 threads");
    assert_eq!(one.2, eight.2, "SLO_report.json diverged at 8 threads");
    assert_eq!(one.3, two.3, "Chrome trace diverged at 2 threads");
    assert_eq!(one.3, eight.3, "Chrome trace diverged at 8 threads");
    assert!(one.2.contains("\"objectives\""), "SLO report looks empty: {}", one.2);
    assert!(one.3.contains("session.join"), "Chrome trace has no join spans");
}

/// The streaming-telemetry contract (DESIGN.md §11): with the sketch
/// path forced on, the SLO report is still a pure function of the plan —
/// byte-identical at any thread count — because sketches merge in plan
/// order with exactly associative integer bucket addition.
fn sketched_slo_run(threads: usize, seed: u64) -> String {
    let mut config = LabConfig::small(seed);
    config.trace = true;
    config.threads = threads;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    let spans = lab.observer().spans();
    periscope_repro::qoe::slo::evaluate_with_mode(
        &periscope_repro::qoe::SloSpec::paper(),
        &dataset,
        &spans,
        "sketched-threads-test",
        periscope_repro::qoe::EvalMode::Sketched,
    )
    .to_json()
}

#[test]
fn sketched_slo_report_identical_across_thread_counts() {
    let one = sketched_slo_run(1, 2016);
    let two = sketched_slo_run(2, 2016);
    let eight = sketched_slo_run(8, 2016);
    assert_eq!(one, two, "sketched SLO_report.json diverged at 2 threads");
    assert_eq!(one, eight, "sketched SLO_report.json diverged at 8 threads");
    assert!(one.contains("\"objectives\""), "sketched SLO report looks empty: {one}");
    assert!(one.contains("\"decomposition\""), "sketched SLO report lost decomposition: {one}");
}

/// The causal-tree contract (DESIGN.md §7): every joined session's
/// `session.join` root is exactly tiled by its children, and the root's
/// duration IS the recorded join time, in integer microseconds.
#[test]
fn join_span_tree_sums_exactly_to_join_time() {
    let mut config = LabConfig::small(2016);
    config.trace = true;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    let spans = lab.observer().spans();
    let mut by_unit: std::collections::BTreeMap<&str, Vec<&periscope_repro::obs::Span>> =
        std::collections::BTreeMap::new();
    for (unit, span) in &spans {
        by_unit.entry(unit.as_str()).or_default().push(span);
    }
    let mut trees = 0;
    let mut pinned = 0;
    for (unit, unit_spans) in &by_unit {
        let Some(root) = unit_spans.iter().find(|s| s.name == "session.join") else {
            continue;
        };
        assert!(root.is_closed(), "open root survived drain for {unit}");
        let child_sum: u64 =
            unit_spans.iter().filter(|s| s.parent == Some(root.id)).map(|s| s.duration_us()).sum();
        assert_eq!(child_sum, root.duration_us(), "children do not tile the join root for {unit}");
        trees += 1;
        // The unlimited block's units are `session/<dataset index>`; pin the
        // root duration to the dataset's recorded join time for each.
        if let Some(idx) = unit.strip_prefix("session/").and_then(|s| s.parse::<usize>().ok()) {
            let join_s =
                dataset.sessions[idx].join_time_s().expect("a session with a join tree joined");
            assert_eq!(
                root.duration_us(),
                (join_s * 1e6).round() as u64,
                "root span duration is not the join time for {unit}"
            );
            pinned += 1;
        }
    }
    assert!(trees >= 40, "expected join trees for most of 48 sessions, got {trees}");
    assert!(pinned >= 25, "expected pinned unlimited-block checks, got {pinned}");
}

#[test]
fn profile_only_records_phases_without_events() {
    let mut config = LabConfig::small(28);
    config.profile = true;
    let mut lab = Lab::new(config);
    lab.session_dataset();
    let obs = lab.observer();
    assert!(!obs.tracing());
    assert_eq!(obs.event_count(), 0, "profiling must not record events");
    let phases = obs.phases();
    let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"dataset.plan"), "missing dataset.plan in {names:?}");
    assert!(names.contains(&"dataset.execute"), "missing dataset.execute in {names:?}");
    assert!(names.contains(&"dataset.sweep"), "missing dataset.sweep in {names:?}");
}

// ---- Burn-rate alerting + ground-truth incidents (DESIGN.md §14) ----

use periscope_repro::core::{run_incidents, IncidentConfig};
use periscope_repro::service::select::Protocol;
use periscope_repro::simnet::SimDuration;

/// The tentpole invariant: the full incident artifact — alert timelines,
/// correlated incidents, ground-truth scorecard — is byte-identical at
/// every worker-thread count and every quadtree shard count. The SRT arm
/// at this seed raises a real ingest-outage alert, so the comparison
/// covers non-empty timelines.
#[test]
fn incident_artifacts_identical_across_threads_and_shards() {
    let run = |threads: usize, shards: usize| {
        let mut lab = Lab::new(LabConfig::small(2016));
        let mut cfg = IncidentConfig::small(2016);
        cfg.transports = vec![Some(Protocol::Srt)];
        cfg.threads = threads;
        cfg.shards = shards;
        // The artifact records the configured shard count as provenance;
        // normalize that one line so the comparison covers the payload.
        run_incidents(&mut lab, &cfg)
            .to_json()
            .replace(&format!("\"shards\": {shards},"), "\"shards\": N,")
    };
    let baseline = run(1, 1);
    assert!(baseline.contains("\"state\": \"firing\""), "pinned config must alert:\n{baseline}");
    for (threads, shards) in [(2, 1), (8, 1), (2, 4), (8, 16)] {
        assert_eq!(
            run(threads, shards),
            baseline,
            "INCIDENTS.json differs at {threads} threads, {shards} shards"
        );
    }
}

/// Inertness: with no faults injected, no rule may ever transition — the
/// symptom rings are never written (pure function of the fault config),
/// while the QoE rings carry real data the evaluator judged healthy.
#[test]
fn alerts_are_inert_without_faults() {
    let mut lab = Lab::new(LabConfig::small(2016));
    let mut cfg = IncidentConfig::small(2016);
    cfg.transports = Vec::new(); // control arm only
    let report = run_incidents(&mut lab, &cfg);
    assert!(report.control_clean());
    assert!(report.incidents.is_empty(), "incidents on a fault-free run: {:?}", report.incidents);
    assert!(report.scorecard.is_empty());
    let control = &report.arms[0];
    assert!(control.timeline.is_empty(), "transitions: {:?}", control.timeline.transitions);
    for metric in ["ingest", "fastly-eu.periscope.tv", "fastly-sf.periscope.tv"] {
        assert!(
            control.metrics.ring("outage", metric).is_none(),
            "outage/{metric} ring written without faults"
        );
    }
    assert!(control.metrics.ring("alert", "join_time_us").is_some(), "QoE rings must be live");
}

/// One pinned four-hour world: every POP-outage window a session probed
/// is detected (recall 1.0, zero false alarms) and the detection latency
/// is *exact* — one minute when the first probe lands in the fault's
/// first minute-slot, two when the fault is only caught a slot late.
#[test]
fn pinned_outage_windows_detect_with_exact_latency() {
    let mut lab_cfg = LabConfig::small(1);
    lab_cfg.population.window = SimDuration::from_secs(4 * 3600);
    lab_cfg.population.arrivals_per_sec = 0.7;
    let mut lab = Lab::new(lab_cfg);
    let mut cfg = IncidentConfig::small(1);
    cfg.transports = vec![Some(Protocol::Hls)];
    cfg.sessions = 120;
    let report = run_incidents(&mut lab, &cfg);
    assert!(report.control_clean(), "control arm fired");
    assert!(report.detection_perfect(), "scorecard: {:?}", report.scorecard);
    assert!(report.scorecard.iter().all(|r| r.false_alarms == 0 && r.precision == 1.0));
    let row = |rule: &str| {
        report.scorecard.iter().find(|r| r.rule == rule).expect("scorecard row exists")
    };
    let eu = row("pop_outage/fastly-eu.periscope.tv");
    assert_eq!((eu.truth_windows, eu.observed, eu.detected), (2, 2, 2));
    assert_eq!(eu.median_detection_latency_s, 60.0, "probe in the fault's first minute");
    let sf = row("pop_outage/fastly-sf.periscope.tv");
    assert_eq!((sf.truth_windows, sf.observed, sf.detected), (3, 1, 1));
    assert_eq!(sf.median_detection_latency_s, 120.0, "this outage was only probed a slot late");
}
