//! Figure-shape checks: each reproduced artifact must carry the qualitative
//! structure the paper reports, not just render.

use periscope_repro::core::{experiments, FigureData, Lab, LabConfig};

fn run(id: &str, lab: &mut Lab) -> FigureData {
    (experiments::by_id(id).expect("experiment exists").run)(lab)
}

/// Fig 1(a): zooming keeps discovering — the cumulative curve grows well
/// past the first query's yield.
#[test]
fn fig1a_cumulative_growth() {
    let mut lab = Lab::new(LabConfig::small(301));
    let fig = run("fig1a", &mut lab);
    let FigureData::Scatter { series, .. } = &fig else { panic!("scatter expected") };
    for (label, pts) in series {
        let first = pts.first().unwrap().1;
        let last = pts.last().unwrap().1;
        // At small scale the 02h (slump) crawl has little to find; the
        // qualitative claim is that zooming multiplies the initial yield.
        assert!(last >= first * 2.5, "{label}: first={first} last={last}");
        // Monotone non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "{label}");
        }
    }
}

/// Fig 1(b): "half of the areas contain at least 80% of all the broadcasts".
#[test]
fn fig1b_concentration() {
    let mut lab = Lab::new(LabConfig::small(302));
    let fig = run("fig1b", &mut lab);
    let FigureData::Scatter { series, .. } = &fig else { panic!("scatter expected") };
    for (label, pts) in series {
        let at_half =
            pts.iter().find(|(area_pct, _)| *area_pct >= 50.0).map(|(_, b)| *b).unwrap_or(0.0);
        assert!(at_half >= 75.0, "{label}: at_half={at_half}%");
    }
}

/// Fig 2(b): early-morning slump vs evening rise in the broadcaster's local
/// time.
#[test]
fn fig2b_diurnal_shape() {
    let mut lab = Lab::new(LabConfig::small(303));
    let fig = run("fig2b", &mut lab);
    let FigureData::Scatter { series, .. } = &fig else { panic!("scatter expected") };
    let pts = &series[0].1;
    let value_at = |h: f64| {
        pts.iter()
            .filter(|(x, _)| (x - h).abs() <= 1.5)
            .map(|(_, v)| *v)
            .fold(f64::NAN, |acc, v| if acc.is_nan() { v } else { (acc + v) / 2.0 })
    };
    let slump = value_at(4.0);
    let evening = value_at(21.0);
    if slump.is_finite() && evening.is_finite() {
        assert!(evening > slump, "evening={evening} slump={slump}");
    }
}

/// Fig 6(b): "When the quality (i.e., QP value) is roughly the same, the
/// bitrate varies in a large range."
#[test]
fn fig6b_bitrate_varies_at_fixed_qp() {
    let mut lab = Lab::new(LabConfig::small(304));
    let fig = run("fig6b", &mut lab);
    let FigureData::Scatter { series, .. } = &fig else { panic!("scatter expected") };
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
    assert!(all.len() >= 20, "points={}", all.len());
    // Within a central QP band, the bitrate spread is wide.
    let qps: Vec<f64> = all.iter().map(|(_, qp)| *qp).collect();
    let median_qp = {
        let mut v = qps.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let band: Vec<f64> =
        all.iter().filter(|(_, qp)| (qp - median_qp).abs() <= 3.0).map(|(r, _)| *r).collect();
    if band.len() >= 5 {
        let min = band.iter().cloned().fold(f64::MAX, f64::min);
        let max = band.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 1.5, "bitrate range at fixed QP: {min}..{max}");
    }
}

/// §5 Welch t-tests: only frame rate differs significantly between the two
/// phones — the reproduction's device models are built that way, and the
/// statistical machinery must recover it.
#[test]
fn ttest_only_frame_rate_significant() {
    // The default small dataset (~50 sessions) is underpowered for a Welch
    // test on rendered fps; quadruple the unlimited-session pool so the
    // device gap (S3 caps at 26 fps, S4 at 30) is detectable at α = 0.05.
    let mut config = LabConfig::small(305);
    config.sessions_unlimited = 120;
    let mut lab = Lab::new(config);
    let fig = run("table-ttest", &mut lab);
    let FigureData::Table { rows, .. } = &fig else { panic!("table expected") };
    let significant: Vec<(&str, &str)> =
        rows.iter().map(|r| (r[0].as_str(), r[4].as_str())).collect();
    let fps_row = significant.iter().find(|(m, _)| *m == "frame rate").unwrap();
    assert_eq!(fps_row.1, "YES", "frame rate must differ (S3 caps at 26 fps)");
    for (metric, sig) in &significant {
        if *metric != "frame rate" {
            assert_ne!(*sig, "YES", "{metric} should not differ between phones");
        }
    }
}

/// §5.2: the segment-duration mode sits at 3.6 s within a 3–6 s range.
#[test]
fn segment_durations_modal() {
    let mut lab = Lab::new(LabConfig::small(306));
    let fig = run("table-video", &mut lab);
    let modal: f64 =
        fig.table_value("segment durations at 3.6s").expect("row exists").parse().expect("numeric");
    assert!(modal > 0.5, "modal={modal}");
    let range = fig.table_value("segment duration range (s)").unwrap();
    let (lo, hi) = range.split_once("..").unwrap();
    let lo: f64 = lo.parse().unwrap();
    let hi: f64 = hi.parse().unwrap();
    assert!(lo >= 2.9 && hi <= 6.5, "range={range}");
}

/// Fig 7: the four headline orderings of the power figure.
#[test]
fn fig7_orderings() {
    let mut lab = Lab::new(LabConfig::small(307));
    let fig = run("fig7", &mut lab);
    let FigureData::Bars { groups, .. } = &fig else { panic!("bars expected") };
    let wifi =
        |name: &str| groups.iter().find(|(g, _)| g.contains(name)).map(|(_, v)| v[0]).unwrap();
    let lte =
        |name: &str| groups.iter().find(|(g, _)| g.contains(name)).map(|(_, v)| v[1]).unwrap();
    // Chat-on viewing beats broadcasting — the paper's surprise.
    assert!(wifi("chat on") > wifi("Broadcast"));
    // LTE > WiFi on every non-idle scenario.
    for (g, _) in groups.iter().skip(1) {
        assert!(lte(g) > wifi(g), "{g}");
    }
    // Idle ~1 W; chat-on ~4x idle.
    assert!(wifi("Home") < 1200.0);
    assert!(wifi("chat on") > 3.2 * wifi("Home"));
}

/// §5.1 join-time attribution, via the causal span layer: the per-protocol
/// decomposition must carry the paper's structure. RTMP joins are dominated
/// by the player's initial buffer fill (the handshake is ~1.5 RTTs), while
/// HLS joins spend their time on connection bootstrap plus playlist/segment
/// fetches — the CDN indirection the paper blames for HLS's higher latency.
#[test]
fn join_decomposition_matches_protocol_structure() {
    use periscope_repro::qoe::slo::{evaluate, SloSpec};
    use periscope_repro::service::select::Protocol;
    let mut config = LabConfig::small(2016);
    config.trace = true;
    let mut lab = Lab::new(config);
    let dataset = lab.session_dataset();
    let spans = lab.observer().spans();
    let report = evaluate(&SloSpec::paper(), &dataset, &spans, "paper-findings");
    assert!(report.pass(), "paper-derived SLOs must hold at seed 2016:\n{}", report.table());
    let phases = |p: Protocol| {
        let d = report
            .decomposition
            .iter()
            .find(|d| d.protocol == p)
            .unwrap_or_else(|| panic!("no {p:?} decomposition"));
        (d.join_mean_s, d.phase_means.clone())
    };
    let get = |means: &[(String, f64)], name: &str| {
        means.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0)
    };
    let (rtmp_join, rtmp) = phases(Protocol::Rtmp);
    let (hls_join, hls) = phases(Protocol::Hls);
    // RTMP: buffer fill dominates; the handshake is a small fraction.
    assert!(
        get(&rtmp, "rtmp.buffering") > get(&rtmp, "rtmp.handshake"),
        "rtmp decomposition: {rtmp:?}"
    );
    assert!(
        get(&rtmp, "rtmp.buffering") > 0.5 * rtmp_join,
        "buffering should dominate the rtmp join: {rtmp:?}"
    );
    // HLS: the chunked-delivery phases (bootstrap + playlist + segments)
    // dominate, and segment fetches outweigh the playlist fetch.
    let hls_delivery =
        get(&hls, "tcp.bootstrap") + get(&hls, "hls.playlist") + get(&hls, "hls.segments");
    assert!(hls_delivery > 0.5 * hls_join, "delivery should dominate the hls join: {hls:?}");
    assert!(
        get(&hls, "hls.segments") > get(&hls, "hls.playlist"),
        "segments should outweigh the playlist fetch: {hls:?}"
    );
    // The paper's headline: joining an HLS (popular, CDN-served) stream is
    // slower on average than joining an RTMP one.
    assert!(hls_join > rtmp_join, "hls mean join {hls_join} <= rtmp {rtmp_join}");
}
