//! Property tests for the shard plan (DESIGN.md §13): the quadtree
//! partition is total and disjoint for arbitrary coordinates — including
//! cell boundaries, the poles and the antimeridian — and the cross-shard
//! roll-up merge is associative and commutative under arbitrary plan-order
//! regroupings, the property the byte-identity guarantee rests on.

use periscope_repro::core::shard::{ShardPlan, ShardStats};
use periscope_repro::simnet::geo::quad_depth_for;
use periscope_repro::simnet::{GeoPoint, GeoRect, RngFactory};
use periscope_repro::workload::population::{Population, PopulationConfig};
use pscp_check::{check, ensure, Gen};

/// Arbitrary coordinates biased toward the places partitions go wrong:
/// exact cell edges at every depth, the poles, the antimeridian, and raw
/// out-of-range values that [`GeoPoint::new`] must clamp/wrap first.
fn arb_point(g: &mut Gen) -> GeoPoint {
    // Cell edges at depths 0-3 are multiples of 22.5° (lat) / 45° (lon).
    let edge = |g: &mut Gen, step: f64, n: i64| step * g.i64(-n..=n) as f64;
    let lat = match g.choice(4) {
        0 => g.f64(-90.0..=90.0),
        1 => edge(g, 22.5, 4),
        2 => [-90.0, 90.0, 0.0][g.choice(3)],
        _ => g.f64(-200.0..=200.0), // out of range: constructor clamps
    };
    let lon = match g.choice(4) {
        0 => g.f64(-180.0..=180.0),
        1 => edge(g, 45.0, 4),
        2 => [-180.0, 180.0, 0.0][g.choice(3)],
        _ => g.f64(-400.0..=400.0), // out of range: constructor wraps
    };
    GeoPoint::new(lat, lon)
}

#[test]
fn every_point_lands_in_exactly_one_cell() {
    check(
        "shard/point-in-one-cell",
        |g| (arb_point(g), g.u64(0..=3) as u8),
        |(p, depth)| {
            let cells = 1u16 << (2 * depth);
            let containing: Vec<u16> =
                (0..cells).filter(|&k| GeoRect::quad_rect(k, *depth).contains(p)).collect();
            ensure!(
                containing.len() == 1,
                "point {p:?} at depth {depth} is in {} cells: {containing:?}",
                containing.len()
            );
            let key = GeoRect::quad_cell(p, *depth);
            ensure!(
                containing == [key],
                "quad_cell says {key} but containment says {containing:?} for {p:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn plan_partition_is_total_and_disjoint() {
    check(
        "shard/plan-partition",
        |g| {
            let seed = g.u64(..);
            let shards = [1usize, 4, 16, 64][g.choice(4)];
            (seed, shards)
        },
        |&(seed, shards)| {
            // A tiny but fully arbitrary world per case.
            let cfg = PopulationConfig {
                window: periscope_repro::simnet::SimDuration::from_secs(600),
                arrivals_per_sec: 0.2,
                ..PopulationConfig::small()
            };
            let pop = Population::generate(cfg, &RngFactory::new(seed));
            let plan = ShardPlan::build(&pop, shards);
            ensure!(plan.shards() == shards, "plan has {} cells, want {shards}", plan.shards());
            ensure!(
                quad_depth_for(shards) == Some(plan.depth),
                "depth {} does not match shard count {shards}",
                plan.depth
            );
            let mut seen = vec![0u32; pop.broadcasts.len()];
            for cell in &plan.cells {
                for &i in &cell.members {
                    seen[i as usize] += 1;
                    let b = &pop.broadcasts[i as usize];
                    ensure!(
                        cell.id.rect().contains(&b.location),
                        "broadcast {i} at {:?} assigned outside its cell {:?}",
                        b.location,
                        cell.id
                    );
                    ensure!(
                        plan.cell_index(&b.location) == cell.id.key as usize,
                        "cell_index disagrees with membership for broadcast {i}"
                    );
                }
            }
            for (i, &n) in seen.iter().enumerate() {
                ensure!(n == 1, "broadcast {i} assigned to {n} cells (must be exactly 1)");
            }
            Ok(())
        },
    );
}

/// One arbitrary per-shard roll-up leaf.
fn arb_stats(g: &mut Gen) -> ShardStats {
    let mut st = ShardStats::new();
    st.sessions = g.u64(0..1000);
    st.primary = g.u64(0..1000);
    st.migrated_in = g.u64(0..100);
    st.never_joined = g.u64(0..50);
    st.skipped = g.u64(0..50);
    for _ in 0..g.u64(0..40) {
        st.join_us.observe(g.u64(0..60_000_000));
        st.stall_ppm.observe(g.u64(0..1_000_000));
    }
    st.watch_us = g.u64(0..u32::MAX as u64);
    st.migrations_out = g.u64(0..100);
    st.migrations_cross = g.u64(0..100);
    st.migrations_dropped = g.u64(0..100);
    st.chat_out = g.u64(0..10_000);
    st.chat_in = g.u64(0..10_000);
    st.chat_cross = g.u64(0..10_000);
    st
}

/// Folds leaves under an arbitrary grouping tree described by `splits`:
/// repeatedly merge a random contiguous run into a subtotal, then fold
/// the subtotals left-to-right.
fn fold_grouped(leaves: &[ShardStats], splits: &[usize]) -> ShardStats {
    let mut groups: Vec<ShardStats> = Vec::new();
    let mut i = 0;
    let mut si = 0;
    while i < leaves.len() {
        let take = if si < splits.len() { splits[si].clamp(1, leaves.len() - i) } else { 1 };
        si += 1;
        let mut sub = ShardStats::new();
        for leaf in &leaves[i..i + take] {
            sub.merge(leaf);
        }
        groups.push(sub);
        i += take;
    }
    let mut acc = ShardStats::new();
    for gstats in &groups {
        acc.merge(gstats);
    }
    acc
}

#[test]
fn rollup_merge_is_associative_and_commutative() {
    check(
        "shard/rollup-merge-regroup",
        |g| {
            let leaves: Vec<ShardStats> = (0..g.u64(1..10)).map(|_| arb_stats(g)).collect();
            let splits: Vec<usize> = (0..g.u64(0..6)).map(|_| g.u64(1..4) as usize).collect();
            // An arbitrary permutation via repeated swaps (commutativity).
            let swaps: Vec<(usize, usize)> = (0..g.u64(0..8))
                .map(|_| {
                    (g.u64(0..leaves.len() as u64) as usize, g.u64(0..leaves.len() as u64) as usize)
                })
                .collect();
            (leaves, splits, swaps)
        },
        |(leaves, splits, swaps)| {
            // Plan order, flat fold: the reference.
            let reference = fold_grouped(leaves, &[]);
            // Same leaves, arbitrary grouping: associativity.
            let grouped = fold_grouped(leaves, splits);
            ensure!(
                grouped.json() == reference.json(),
                "regrouped fold diverged:\n  {}\nvs {}",
                grouped.json(),
                reference.json()
            );
            // Same leaves, arbitrary order: commutativity.
            let mut shuffled = leaves.clone();
            for &(a, b) in swaps {
                shuffled.swap(a, b);
            }
            let permuted = fold_grouped(&shuffled, splits);
            ensure!(
                permuted.json() == reference.json(),
                "permuted fold diverged:\n  {}\nvs {}",
                permuted.json(),
                reference.json()
            );
            Ok(())
        },
    );
}
