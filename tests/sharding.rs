//! Shard-invariance suite (DESIGN.md §13): quadtree sharding must be
//! provably inert. Datasets, figures, the SLO report, the merged QoE
//! sketch snapshot and the scale engine's roll-ups are byte-identical
//! across shard counts 1/4/16 and thread counts, and the golden artifacts
//! of the unsharded seed reproduce exactly under 16 shards.
//!
//! Run under the CI thread matrix (`PSCP_THREADS` 1/4/8): every
//! comparison here also crosses explicit thread counts, so one run of
//! this binary checks shards × threads.

use periscope_repro::core::shard::{run_scale, ScaleConfig};
use periscope_repro::core::{experiments, Lab, LabConfig};
use periscope_repro::qoe::dataset::SessionDataset;
use periscope_repro::qoe::telemetry::QoeTelemetry;
use periscope_repro::qoe::{slo, SloSpec};
use periscope_repro::service::select::Protocol;
use periscope_repro::stats::quantile::quantiles;

const SEED: u64 = 2016;

fn lab_with(shards: usize, threads: usize) -> Lab {
    let mut config = LabConfig::small(SEED);
    config.shards = shards;
    config.threads = threads;
    Lab::new(config)
}

/// Everything an artifact consumer can see of a dataset run: per-session
/// fingerprints, the SLO report JSON, the merged sketch snapshot, and a
/// rendered figure.
fn artifact_bundle(shards: usize, threads: usize) -> (Vec<String>, String, String, String) {
    let mut lab = lab_with(shards, threads);
    let dataset = lab.session_dataset();
    let fingerprints = dataset
        .sessions
        .iter()
        .map(|s| {
            format!(
                "{:?}|{:?}|{}|{}|{:?}|{:?}",
                s.broadcast_id,
                s.protocol,
                s.meta.n_stalls,
                s.capture.total_bytes(),
                s.join_time_s().map(|j| (j * 1e6) as u64),
                s.bandwidth_limit_bps,
            )
        })
        .collect();
    let slo_json = slo::evaluate(&SloSpec::paper(), &dataset, &[], "sharding-suite").to_json();
    let sketch_snapshot = QoeTelemetry::from_dataset(&dataset).snapshot_json();
    let mut lab2 = lab_with(shards, threads);
    let fig = experiments::by_id("fig3a").expect("fig3a exists");
    let figure = (fig.run)(&mut lab2).render();
    (fingerprints, slo_json, sketch_snapshot, figure)
}

#[test]
fn dataset_figures_slo_and_sketches_invariant_across_shards_and_threads() {
    let baseline = artifact_bundle(1, 1);
    assert!(!baseline.0.is_empty());
    for (shards, threads) in [(4, 1), (16, 1), (1, 8), (16, 8), (4, 0)] {
        let got = artifact_bundle(shards, threads);
        assert_eq!(got.0, baseline.0, "dataset diverged at shards={shards} threads={threads}");
        assert_eq!(got.1, baseline.1, "SLO report diverged at shards={shards} threads={threads}");
        assert_eq!(got.2, baseline.2, "sketch snapshot diverged at shards={shards}");
        assert_eq!(got.3, baseline.3, "figure diverged at shards={shards} threads={threads}");
    }
}

/// The pinned golden facts of `tests/golden_figures.rs` reproduce exactly
/// under 16 shards: sharding is provably inert at seed scale. (The golden
/// suite itself runs at the default `shards: 1`, so together the two
/// suites pin both sides of the equivalence.)
#[test]
fn golden_artifacts_reproduce_under_sixteen_shards() {
    let mut lab = lab_with(16, 0);
    let dataset = lab.session_dataset();
    let rtmp = dataset.unlimited(Protocol::Rtmp);
    assert_eq!(rtmp.len(), 21, "unlimited RTMP session count changed under sharding");
    let join = SessionDataset::join_times_s(&rtmp);
    assert_eq!(
        quantiles(&join, &[0.25, 0.5, 0.9]).unwrap(),
        vec![0.524036, 1.757723, 1.787923],
        "golden join quantiles changed under sharding"
    );
}

/// The sharded scale engine: roll-ups byte-identical across shard and
/// thread counts (the 1M-tier acceptance property, at test size).
#[test]
fn scale_engine_rollups_invariant_across_shards_and_threads() {
    let pop = periscope_repro::workload::population::Population::generate(
        periscope_repro::workload::population::PopulationConfig::small(),
        &periscope_repro::simnet::RngFactory::new(SEED).child("world"),
    );
    let svc = periscope_repro::service::PeriscopeService::new(
        pop,
        periscope_repro::service::ServiceConfig::default(),
    );
    let rngs = periscope_repro::simnet::RngFactory::new(SEED);
    let run_at = |shards: usize, threads: usize| {
        let cfg = ScaleConfig { shards, threads, target_sessions: 50, ..Default::default() };
        let run = run_scale(&svc, &rngs, &cfg);
        (run.stats.json(), run.telemetry.snapshot_json())
    };
    let baseline = run_at(1, 1);
    for (shards, threads) in [(4, 1), (16, 1), (1, 8), (4, 8), (16, 0)] {
        assert_eq!(
            run_at(shards, threads),
            baseline,
            "scale roll-up diverged at shards={shards} threads={threads}"
        );
    }
}
