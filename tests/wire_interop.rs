//! Cross-crate wire interoperability: bytes produced by one layer's encoder
//! must be consumed by another layer's decoder, across crate boundaries,
//! exactly as they are on the simulated wire.

use periscope_repro::media::bitstream::{FrameKind, FramePayload};
use periscope_repro::media::flv::VideoTag;
use periscope_repro::media::ts::{demux_segment, TsMuxer, TsUnit};
use periscope_repro::proto::hls::MediaPlaylist;
use periscope_repro::proto::http::{Request, Response};
use periscope_repro::proto::json;
use periscope_repro::proto::rtmp::{Chunker, Dechunker, Message};
use periscope_repro::service::api::ApiRequest;
use periscope_repro::simnet::GeoRect;
use periscope_repro::workload::broadcast::BroadcastId;

fn frame(pts: u32, kind: FrameKind, size: usize) -> FramePayload {
    FramePayload {
        kind,
        qp: 31,
        width: 320,
        height: 568,
        pts_ms: pts,
        ntp_s: Some(pts as f64 / 1000.0),
        size,
    }
}

/// encoder payload → FLV tag → RTMP chunks → dechunk → tag → payload.
#[test]
fn rtmp_stack_roundtrip() {
    let mut chunker = Chunker::new();
    let mut wire = Vec::new();
    let mut originals = Vec::new();
    for i in 0..120u32 {
        let kind = if i % 36 == 0 { FrameKind::I } else { FrameKind::P };
        let f = frame(i * 33, kind, 200 + (i as usize * 37) % 800);
        let tag = VideoTag::for_frame(f.clone());
        chunker.write(&Message::video(i * 33, tag.encode()), &mut wire);
        originals.push(f);
    }
    let mut d = Dechunker::new();
    // Feed in MTU-sized chunks like the link does.
    for part in wire.chunks(1448) {
        d.feed(part).unwrap();
    }
    let recovered: Vec<FramePayload> =
        d.pop_all().into_iter().map(|m| VideoTag::decode(&m.payload).unwrap().frame).collect();
    assert_eq!(recovered, originals);
}

/// encoder payload → TS segment → HTTP response → parse → demux → payload.
#[test]
fn hls_stack_roundtrip() {
    let mut mux = TsMuxer::new();
    let units: Vec<TsUnit> = (0..90u32)
        .map(|i| {
            let kind = if i % 36 == 0 { FrameKind::I } else { FrameKind::B };
            TsUnit::Video { pts_ms: i * 33, data: frame(i * 33, kind, 300).encode() }
        })
        .collect();
    let segment = mux.mux_segment(&units);
    let resp = Response::ok_bytes("video/mp2t", segment);
    let wire = resp.encode();
    let parsed = Response::decode(&wire).unwrap();
    let recovered = demux_segment(&parsed.body).unwrap();
    assert_eq!(recovered, units);
}

/// API request → HTTP → JSON body → parse → typed request, across
/// proto/service boundaries.
#[test]
fn api_stack_roundtrip() {
    let req = ApiRequest::MapGeoBroadcastFeed {
        rect: GeoRect::new(40.0, 28.0, 42.0, 30.0),
        include_replay: false,
    };
    let http = req.to_http("session-token");
    // The mitmproxy view: raw bytes on the wire.
    let wire = http.encode();
    let reparsed = Request::decode(&wire).unwrap();
    let body = json::parse(std::str::from_utf8(&reparsed.body).unwrap()).unwrap();
    assert_eq!(body.get("include_replay").unwrap().as_bool(), Some(false));
    assert_eq!(ApiRequest::from_http(&reparsed).unwrap(), req);
}

/// getBroadcasts ids survive the 13-char string form end to end.
#[test]
fn broadcast_ids_roundtrip_through_api() {
    let ids: Vec<BroadcastId> = (1..50).map(|i| BroadcastId(i * 7919)).collect();
    let req = ApiRequest::GetBroadcasts { ids: ids.clone() };
    let http = req.to_http("t");
    match ApiRequest::from_http(&Request::decode(&http.encode()).unwrap()).unwrap() {
        ApiRequest::GetBroadcasts { ids: got } => assert_eq!(got, ids),
        other => panic!("wrong request {other:?}"),
    }
}

/// A playlist rendered by the segmenter parses with the proto parser and
/// references fetchable URIs.
#[test]
fn playlist_roundtrip() {
    use periscope_repro::media::content::{ContentClass, ContentProcess};
    use periscope_repro::media::encoder::{Encoder, EncoderConfig};
    use periscope_repro::service::segmenter::{Segmenter, SegmenterConfig};
    use periscope_repro::simnet::{RngFactory, SimTime};
    let mut rng = RngFactory::new(5).stream("interop");
    let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
    let mut enc =
        Encoder::new(EncoderConfig { frame_drop_prob: 0.0, ..Default::default() }, content);
    let mut seg = Segmenter::new(SegmenterConfig::default());
    for i in 0..600 {
        let t = SimTime::from_micros(i as u64 * 33_333);
        if let Some(f) = enc.next_frame(t.as_secs_f64(), &mut rng) {
            seg.push_frame(&f, t);
        }
    }
    let now = SimTime::from_secs(30);
    let playlist_text = seg.playlist_at(now).render();
    let parsed = MediaPlaylist::parse(&playlist_text).unwrap();
    assert!(!parsed.segments.is_empty());
    for entry in &parsed.segments {
        let s = seg.segment_by_uri(&entry.uri, now).expect("advertised segment fetchable");
        // And the fetched segment demuxes.
        assert!(!demux_segment(&s.bytes).unwrap().is_empty());
    }
}
